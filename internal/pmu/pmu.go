package pmu

import (
	"fmt"
	"math/rand"

	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// Sample is one PMI delivery. Both sampling events capture everything
// the hardware offers — the eventing IP and the LBR stack — mirroring
// the paper's collector, which runs both counters in LBR mode and lets
// the analysis phase discard the half it does not need per event.
type Sample struct {
	Event Event  // triggering event
	IP    uint64 // eventing IP (skid/shadowing applied)
	// Stack is the LBR snapshot, entry[0] oldest; nil if unavailable.
	// It lives in a buffer the PMU reuses across deliveries and is
	// only valid for the duration of the handler call — handlers that
	// retain stack data must copy it (the same contract collection
	// sinks already have).
	Stack []BranchRecord
	Ring  program.Ring // ring at delivery
	Cycle uint64       // cycle at delivery
}

// Sampling programs one counter for event-based sampling.
type Sampling struct {
	Event   Event
	Period  uint64
	Handler func(Sample)
}

// Config calibrates the PMU pathologies. The magnitudes are chosen so
// that EBS accuracy degrades like skid/blockLength (bad on short blocks)
// while LBR accuracy is roughly length-independent but suffers on blocks
// whose branches are bias-prone — the landscape in which the paper's
// "length cutoff near 18" rule is optimal.
type Config struct {
	Seed int64

	// LBRDepth is the architectural stack depth (16 on Ivy Bridge).
	LBRDepth int
	// HistoryDepth is how much branch history the model retains so the
	// bias anomaly can deliver stale windows. Must be >= 2*LBRDepth.
	HistoryDepth int

	// SkidPreciseMin/Max bound the uniform base skid, in retired
	// instructions, for precise events. Non-precise events use
	// SkidMin/Max. Even PREC_DIST skids: "even precise variants are
	// affected by these undesirable phenomena, although to a lesser
	// extent".
	SkidPreciseMin, SkidPreciseMax int
	SkidMin, SkidMax               int

	// Shadowing, when true, prevents samples from landing on
	// long-latency instructions; the pending PMI slides to the next
	// instruction after them, piling samples up behind DIV/SQRT-class
	// operations.
	Shadowing bool

	// BiasStrength is the probability that a snapshot containing a
	// bias-prone branch is read starting at that branch, pinning it to
	// entry[0] of a truncated stack (the Section III.C anomaly).
	BiasStrength float64
	// BiasProne classifies branch source addresses as prone to the
	// entry[0] anomaly. Nil disables the anomaly.
	BiasProne func(addr uint64) bool

	// BranchSkidMax bounds the uniform delivery skid of the branch
	// counter, in retired taken branches.
	BranchSkidMax int

	// EntryDropProb is the probability that a delivered LBR snapshot is
	// missing one interior entry (speculation/interrupt interference in
	// real hardware — see Weaver's non-determinism studies). The two
	// streams adjacent to the dropped entry merge into one spurious
	// stream spanning code that did not execute straight-line, which
	// over-credits the blocks in between. Blocks covering more address
	// space intersect more such spans, so this noise grows mildly with
	// block length — part of why the paper finds EBS preferable on long
	// blocks.
	EntryDropProb float64
}

// DefaultConfig returns the calibrated Ivy Bridge-like model used across
// the evaluation.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		LBRDepth:       16,
		HistoryDepth:   64,
		SkidPreciseMin: 1,
		SkidPreciseMax: 4,
		SkidMin:        4,
		SkidMax:        12,
		Shadowing:      true,
		BiasStrength:   0.5,
		BiasProne:      DefaultBiasProne,
		BranchSkidMax:  2,
		EntryDropProb:  0.15,
	}
}

// DefaultBiasProne marks roughly 1 in 32 branch sites as bias-prone,
// deterministically by address, matching the paper's observation that
// the anomaly is tied to particular branches.
func DefaultBiasProne(addr uint64) bool {
	h := addr
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h%32 == 0
}

// pendingPMI tracks an in-flight interrupt between counter overflow and
// sample capture.
type pendingPMI struct {
	active   bool
	skidLeft int
}

// eventClass partitions sampling events by what makes their counter
// tick: the retirement counters tick per instruction, the branch
// counter on the dynamic taken outcome, and every other event never
// triggers a sampling counter. Classifying once at programming time
// lets the per-block fast path index a precomputed occurrence vector
// instead of re-deriving the event rules per counter per block.
type eventClass uint8

const (
	classNone   eventClass = iota // never triggers a sampling counter
	classInstr                    // ticks once per retired instruction
	classBranch                   // ticks once per retired taken branch
	numClasses
)

// classify maps a sampling event to its counter class.
func classify(e Event) eventClass {
	switch e {
	case InstRetired, InstRetiredPrecDist:
		return classInstr
	case BrInstRetiredNearTaken:
		return classBranch
	}
	return classNone
}

// counterState is one programmed sampling counter. Field order keeps
// the per-block fast path's working set (value, period, total, the
// pending flag and the class) at the front of the struct, with the
// cold configuration behind it.
type counterState struct {
	value   uint64
	period  uint64 // == cfg.Period, hoisted next to value
	total   uint64 // total event occurrences (counting mode view)
	pending pendingPMI
	class   eventClass
	dropped uint64 // overflows lost because a PMI was already in flight
	cfg     Sampling
}

// countInstr accrues the counting-mode occurrences of one retired
// instruction into per-event totals. It is the single definition of
// the instruction-specific event rules: the per-block aggregate
// derivation and the per-instruction reference path both feed on it,
// so the two dispatch paths cannot drift apart. Branch events are
// dynamic (they depend on the taken outcome) and are counted by the
// callers.
func countInstr(info *isa.Info, counts *[numEvents]uint64) {
	counts[InstRetired]++
	if info.Cat == isa.CatDivide {
		counts[DivCycles] += uint64(info.Latency)
	}
	switch info.Ext {
	case isa.SSE:
		if info.FLOPs > 0 {
			counts[MathSSEFP]++
		}
		if info.VecBits == 128 && info.FLOPs == 0 && info.Packing == isa.Packed {
			counts[IntSIMD]++
		}
	case isa.AVX:
		if info.FLOPs > 0 {
			counts[MathAVXFP]++
		}
	case isa.X87:
		counts[X87Ops]++
	}
}

// blockAgg caches the counting-mode event occurrences one execution of
// a basic block contributes — static properties of the block's retired
// ops, derived once per block and reused on every subsequent
// execution; only the taken-branch trigger is dynamic and stays
// outside the aggregate.
type blockAgg struct {
	valid  bool
	counts [numEvents]uint64
}

// blockHot is the per-block state of the retirement fast path. insts
// doubles as the validity flag: non-empty blocks retire at least one
// instruction, so 0 means the aggregate has not been derived yet.
type blockHot struct {
	insts uint64 // static InstRetired occurrences per execution
	hits  uint64 // deferred fast-path executions not yet folded
}

// occurrences returns how many occurrences of sampling event e one
// execution of the block generates — mirroring the occurred logic of
// the per-instruction step: the retirement counters tick per
// instruction, the branch counter on the dynamic taken outcome, and
// every other event never triggers a sampling counter.
func (a *blockAgg) occurrences(e Event, taken bool) uint64 {
	switch e {
	case InstRetired, InstRetiredPrecDist:
		return a.counts[InstRetired]
	case BrInstRetiredNearTaken:
		if taken {
			return 1
		}
	}
	return 0
}

// PMU consumes the retirement stream and delivers samples. It
// implements cpu.BlockListener (the block-granularity fast path) and
// cpu.Listener (the per-instruction reference path). A PMU instance
// observes a single program: the per-block aggregate cache is keyed by
// block ID.
type PMU struct {
	cfg      Config
	rng      *rand.Rand
	lbr      *lbrRing
	counters []counterState // contiguous: the hot loops touch every counter

	// Counting-mode totals for the instruction-specific events, used
	// for PMU-vs-instrumentation cross-checks like the paper's. The
	// fast path defers its static per-block contributions to blockHits
	// and folds them in on read (Count), so counts alone is complete
	// only after a fold.
	counts [numEvents]uint64

	// aggs caches per-block event aggregates, grown lazily by block ID.
	aggs []blockAgg
	// hot packs the two per-block words the fast path touches — the
	// block's static instruction count and its deferred hit tally —
	// into one cache line's worth of state, so the common case loads
	// and stores a single line instead of walking the full aggregate.
	// Each hit contributes the block's static aggregate to counts,
	// applied lazily as hits × aggregate instead of per retirement.
	hot []blockHot
	// ev is the reused retirement event of the block slow path.
	ev cpu.RetireEvent
	// stackBuf is the reused LBR snapshot buffer of deliver; sample
	// handlers own the stack only for the duration of the call.
	stackBuf []BranchRecord
}

// New builds a PMU with the given config and sampling programmings. At
// most one precise event may be programmed, matching x86.
func New(cfg Config, samplings ...Sampling) (*PMU, error) {
	if cfg.LBRDepth <= 1 {
		return nil, fmt.Errorf("pmu: LBR depth %d too small", cfg.LBRDepth)
	}
	if cfg.HistoryDepth < 2*cfg.LBRDepth {
		return nil, fmt.Errorf("pmu: history depth %d < 2x LBR depth", cfg.HistoryDepth)
	}
	precise := 0
	p := &PMU{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		lbr: newLBRRing(cfg.HistoryDepth),
	}
	for _, s := range samplings {
		if s.Period == 0 {
			return nil, fmt.Errorf("pmu: event %v has zero period", s.Event)
		}
		if s.Handler == nil {
			return nil, fmt.Errorf("pmu: event %v has no handler", s.Event)
		}
		if s.Event.Precise() {
			precise++
			if precise > 1 {
				return nil, fmt.Errorf("pmu: precise events limited to one counter")
			}
		}
		p.counters = append(p.counters, counterState{cfg: s, period: s.Period, class: classify(s.Event)})
	}
	return p, nil
}

// agg returns the cached event aggregate for the event's block,
// deriving it from the block's retired ops on first sight.
func (p *PMU) agg(bev *cpu.BlockEvent) *blockAgg {
	id := bev.BlockID()
	if id >= len(p.aggs) {
		p.aggs = append(p.aggs, make([]blockAgg, id+1-len(p.aggs))...)
		p.hot = append(p.hot, make([]blockHot, id+1-len(p.hot))...)
	}
	a := &p.aggs[id]
	if a.valid {
		return a
	}
	a.valid = true
	infos := bev.Infos()
	for i := range infos {
		countInstr(&infos[i], &a.counts)
	}
	return a
}

// RetireBlock implements cpu.BlockListener — the retirement fast path.
//
// Each counter tracks its distance to the next overflow in its own
// event currency (instructions for the retirement counters, taken
// branches for the branch counter), so a whole block is consumed in
// O(counters): when no counter overflows inside the block and no PMI is
// in flight, the only architecturally visible effects are the
// counting-mode totals and — for a taken terminator — one LBR push, all
// served from the per-block aggregate. Otherwise the block replays
// through the per-instruction slow path, whose skid, shadowing and
// delivery semantics are the pre-fast-path logic unchanged; overflows
// are rare (periods are in the thousands, Table 4), so the slow path
// engages only in the window where an overflow fires or a pending PMI
// is draining. Parity tests assert the two paths are bit-identical.
func (p *PMU) RetireBlock(bev *cpu.BlockEvent) {
	n := bev.Len()
	if n == 0 {
		return
	}
	id := bev.BlockID()
	var insts uint64
	if id < len(p.hot) {
		insts = p.hot[id].insts
	}
	if insts == 0 {
		agg := p.agg(bev)
		insts = agg.counts[InstRetired]
		p.hot[id].insts = insts
	}
	// Per-class occurrence vector for this block execution, indexed by
	// each counter's precomputed class — equivalent to calling
	// occurrences() per counter, derived once.
	var occs [numClasses]uint64
	occs[classInstr] = insts
	if bev.Taken {
		occs[classBranch] = 1
	}
	for i := range p.counters {
		c := &p.counters[i]
		if c.pending.active || c.value+occs[c.class] >= c.period {
			p.retireBlockSlow(bev)
			return
		}
	}
	// The block's static event contributions are deferred: one hit
	// tally here, hits × aggregate folded into counts on read. Only
	// the dynamic taken-branch effects happen inline.
	p.hot[id].hits++
	if bev.Taken {
		p.counts[BrInstRetiredNearTaken]++
		p.lbr.push(BranchRecord{From: bev.Addrs()[n-1], To: bev.Target})
	}
	for i := range p.counters {
		c := &p.counters[i]
		occ := occs[c.class]
		c.total += occ
		c.value += occ
	}
}

// foldCounts folds the deferred fast-path block hits into the
// counting-mode totals. Idempotent: folded hits are consumed.
func (p *PMU) foldCounts() {
	for id := range p.hot {
		hits := p.hot[id].hits
		if hits == 0 {
			continue
		}
		p.hot[id].hits = 0
		for e, occ := range p.aggs[id].counts {
			p.counts[e] += occ * hits
		}
	}
}

// retireBlockSlow replays one block through the per-instruction path,
// reusing the cached isa.Info the machine computed at construction.
func (p *PMU) retireBlockSlow(bev *cpu.BlockEvent) {
	bev.EachRetire(&p.ev, p.retire)
}

// Retire implements cpu.Listener — the per-instruction reference path.
func (p *PMU) Retire(ev *cpu.RetireEvent) {
	info := ev.Op.Info()
	p.retire(ev, &info)
}

// retire consumes one retirement with its (possibly cached) static
// info.
func (p *PMU) retire(ev *cpu.RetireEvent, info *isa.Info) {
	// Counting-mode events: the shared classifier plus the dynamic
	// branch trigger.
	countInstr(info, &p.counts)
	if ev.Taken {
		p.counts[BrInstRetiredNearTaken]++
		p.lbr.push(BranchRecord{From: ev.Addr, To: ev.Target})
	}

	for i := range p.counters {
		p.step(&p.counters[i], ev, info)
	}
}

// step advances one sampling counter for the retirement ev.
func (p *PMU) step(c *counterState, ev *cpu.RetireEvent, info *isa.Info) {
	occurred := c.class == classInstr || (c.class == classBranch && ev.Taken)
	if occurred {
		c.total++
		c.value++
		if c.value >= c.period {
			c.value = 0
			p.overflow(c, ev.Addr)
		}
	}
	// Advance an in-flight PMI. The skid currency differs by event: the
	// branch counter's delivery slips in retired taken branches, the
	// instruction counters' in retired instructions.
	if !c.pending.active {
		return
	}
	branchCounter := c.class == classBranch
	if branchCounter && !ev.Taken {
		return
	}
	c.pending.skidLeft--
	if c.pending.skidLeft > 0 {
		return
	}
	if !branchCounter && p.cfg.Shadowing && info.IsLongLatency() {
		// The PMI cannot land on an instruction hiding in the shadow of
		// a long-latency operation; it slides to the next retirement.
		return
	}
	c.pending.active = false
	p.deliver(c, ev)
}

// overflow arms a pending PMI with the event-appropriate skid. Skid is
// largely deterministic for a given code location — it reflects the
// microarchitectural state the overflow finds, not a dice roll — with
// one instruction of jitter. The determinism matters: it lets sampling
// alias against loop periods, the systematic EBS pathology that made
// the paper pick prime sampling periods, and it keeps per-location
// displacement stable the way Weaver's determinism studies describe.
func (p *PMU) overflow(c *counterState, addr uint64) {
	if c.pending.active {
		c.dropped++
		return
	}
	var skid int
	switch {
	case c.cfg.Event == BrInstRetiredNearTaken:
		skid = 1 + p.rng.Intn(p.cfg.BranchSkidMax+1)
	case c.cfg.Event.Precise():
		// A per-location component (the microarchitectural state an
		// overflow finds at a given IP is stable) plus jitter.
		span := p.cfg.SkidPreciseMax - p.cfg.SkidPreciseMin + 1
		skid = p.cfg.SkidPreciseMin + int((addrHash(addr)+uint64(p.rng.Intn(3)))%uint64(span))
	default:
		skid = p.cfg.SkidMin + p.rng.Intn(p.cfg.SkidMax-p.cfg.SkidMin+1)
	}
	if skid < 1 {
		skid = 1
	}
	c.pending = pendingPMI{active: true, skidLeft: skid}
}

// addrHash mixes an instruction address into a stable per-location
// value.
func addrHash(addr uint64) uint64 {
	h := addr * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// deliver captures the sample at the current retirement.
func (p *PMU) deliver(c *counterState, ev *cpu.RetireEvent) {
	depth := p.cfg.LBRDepth
	// The entry[0] bias anomaly (Section III.C): when a bias-prone
	// branch sits in the architectural window, the ring read may start
	// at that branch, delivering a truncated stack with the prone
	// branch pinned at entry[0]. Its own source — and every entry older
	// than it — is lost to the analysis, so the streams closing at and
	// before the prone branch go systematically uncounted.
	if p.cfg.BiasProne != nil && p.cfg.BiasStrength > 0 {
		if age, ok := p.lbr.findProne(depth, p.cfg.BiasProne); ok {
			if p.rng.Float64() < p.cfg.BiasStrength {
				depth = age + 1
			}
		}
	}
	// The snapshot fills a reused buffer: handlers own the stack only
	// for the duration of the call (see Sample), so delivery allocates
	// nothing.
	if cap(p.stackBuf) < depth {
		p.stackBuf = make([]BranchRecord, depth)
	}
	stack := p.lbr.snapshotInto(p.stackBuf[:depth], 0)
	if stack != nil && p.cfg.EntryDropProb > 0 && len(stack) > 3 &&
		p.rng.Float64() < p.cfg.EntryDropProb {
		// Drop one interior entry; its neighbours' streams merge.
		i := 1 + p.rng.Intn(len(stack)-2)
		stack = append(stack[:i], stack[i+1:]...)
	}
	c.cfg.Handler(Sample{
		Event: c.cfg.Event,
		IP:    ev.Addr,
		Stack: stack,
		Ring:  ev.Ring,
		Cycle: ev.Cycle,
	})
}

// Count returns the counting-mode total for an event — what a PMU
// counter programmed in counting (non-sampling) mode would read. Used to
// cross-check instrumentation results like the paper does.
func (p *PMU) Count(e Event) uint64 {
	p.foldCounts()
	return p.counts[e]
}

// Dropped returns how many overflows of event e were lost to PMI
// collisions.
func (p *PMU) Dropped(e Event) uint64 {
	var n uint64
	for i := range p.counters {
		if c := &p.counters[i]; c.cfg.Event == e {
			n += c.dropped
		}
	}
	return n
}

// Overflows returns how many overflows event e generated (delivered or
// dropped).
func (p *PMU) Overflows(e Event) uint64 {
	var n uint64
	for i := range p.counters {
		if c := &p.counters[i]; c.cfg.Event == e {
			n += c.total / c.period
		}
	}
	return n
}

var (
	_ cpu.Listener      = (*PMU)(nil)
	_ cpu.BlockListener = (*PMU)(nil)
)
