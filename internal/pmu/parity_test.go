package pmu

import (
	"reflect"
	"testing"

	"hbbp/internal/cpu"
	"hbbp/internal/program"
)

// collectBoth runs the same program twice with identical seeds — once
// on the block fast path, once forced through the per-instruction
// reference dispatch — under a full two-counter programming, and
// returns both sample streams plus both PMUs for counter comparison.
func collectBoth(t *testing.T, p *program.Program, f *program.Function, seed int64, ebsPeriod, lbrPeriod uint64) (fastSamples, refSamples []Sample, fast, ref *PMU) {
	t.Helper()
	run := func(perInstruction bool) ([]Sample, *PMU) {
		var samples []Sample
		handler := func(s Sample) { samples = append(samples, s) }
		pm, err := New(DefaultConfig(seed),
			Sampling{Event: InstRetiredPrecDist, Period: ebsPeriod, Handler: handler},
			Sampling{Event: BrInstRetiredNearTaken, Period: lbrPeriod, Handler: handler},
		)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := cpu.Run(p, f, cpu.Config{Seed: seed, PerInstruction: perInstruction}, pm); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return samples, pm
	}
	fastSamples, fast = run(false)
	refSamples, ref = run(true)
	return fastSamples, refSamples, fast, ref
}

// TestBlockFastPathMatchesReference asserts the counter-overflow
// scheduling fast path is bit-identical to the per-instruction
// reference: same samples (IPs, stacks, rings, cycles, order), same
// counting-mode totals, same overflow and drop accounting.
func TestBlockFastPathMatchesReference(t *testing.T) {
	programs := map[string]func(testing.TB) (*program.Program, *program.Function){
		"hot-loop": func(tb testing.TB) (*program.Program, *program.Function) {
			return loopProgram(tb, 20000)
		},
		"multi-branch": func(tb testing.TB) (*program.Program, *program.Function) {
			p, f, _ := multiBranchProgram(tb)
			return p, f
		},
	}
	for name, build := range programs {
		t.Run(name, func(t *testing.T) {
			p, f := build(t)
			for _, seed := range []int64{1, 7, 23} {
				fastS, refS, fast, ref := collectBoth(t, p, f, seed, 101, 53)
				if len(fastS) == 0 {
					t.Fatalf("seed %d: no samples delivered", seed)
				}
				if !reflect.DeepEqual(fastS, refS) {
					t.Fatalf("seed %d: sample streams diverged (%d fast, %d reference)",
						seed, len(fastS), len(refS))
				}
				for e := Event(0); e < numEvents; e++ {
					if fast.Count(e) != ref.Count(e) {
						t.Errorf("seed %d: Count(%v) = %d fast, %d reference",
							seed, e, fast.Count(e), ref.Count(e))
					}
				}
				for _, e := range []Event{InstRetiredPrecDist, BrInstRetiredNearTaken} {
					if fast.Dropped(e) != ref.Dropped(e) {
						t.Errorf("seed %d: Dropped(%v) = %d fast, %d reference",
							seed, e, fast.Dropped(e), ref.Dropped(e))
					}
					if fast.Overflows(e) != ref.Overflows(e) {
						t.Errorf("seed %d: Overflows(%v) = %d fast, %d reference",
							seed, e, fast.Overflows(e), ref.Overflows(e))
					}
				}
			}
		})
	}
}

// TestFastPathSteadyStateAllocs bounds the block path's allocations:
// with periods too large to ever overflow, a warm PMU consumes whole
// runs without allocating at all — retained sample data is the only
// thing the collection layer may allocate per datum.
func TestFastPathSteadyStateAllocs(t *testing.T) {
	p, f := loopProgram(t, 5000)
	pm, err := New(DefaultConfig(1),
		Sampling{Event: InstRetiredPrecDist, Period: 1 << 40, Handler: func(Sample) { t.Fatal("unexpected sample") }},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := cpu.New(p, cpu.Config{Seed: 1}, pm)
	if _, err := m.Run(f); err != nil { // warm-up: builds the per-block aggregate cache
		t.Fatalf("warm-up run: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.Run(f); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state PMU run allocated %.1f times per run, want 0", allocs)
	}
}
