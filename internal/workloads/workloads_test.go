package workloads

import (
	"testing"

	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/program"
	"hbbp/internal/sde"
)

// build compiles a registered workload, failing the test on error.
func build(t testing.TB, name string) *Workload {
	t.Helper()
	w, err := Default().Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return w
}

func runMix(t testing.TB, w *Workload, repeatCap int) (map[isa.Op]uint64, cpu.Stats) {
	t.Helper()
	repeat := w.Repeat
	if repeat > repeatCap {
		repeat = repeatCap
	}
	in := sde.New(w.Prog)
	in.UserOnly = false
	stats, err := cpu.Run(w.Prog, w.Entry, cpu.Config{Seed: 1, Repeat: repeat, MaxRetired: 200_000_000}, in)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return in.Mnemonics(), stats
}

func TestSPECSuiteBuildsAndRuns(t *testing.T) {
	names := SPECNames()
	if len(names) != 29 {
		t.Fatalf("suite has %d benchmarks, want 29 (SPEC CPU2006)", len(names))
	}
	for _, name := range names {
		w := build(t, name)
		if w.Repeat < 1 {
			t.Errorf("%s: repeat %d", w.Name, w.Repeat)
		}
		_, stats := runMix(t, w, 2)
		if stats.Retired == 0 {
			t.Errorf("%s: no instructions retired", w.Name)
		}
		if stats.KernelRetired != 0 {
			t.Errorf("%s: SPEC workloads must be pure user mode", w.Name)
		}
	}
}

func TestSPECByName(t *testing.T) {
	w := build(t, "povray")
	if w.Name != "povray" {
		t.Fatal("Build(povray) lookup failed")
	}
	if _, err := Default().Build("doom"); err == nil {
		t.Fatal("unknown benchmark built without error")
	}
	if !build(t, "h264ref").SDEBug {
		t.Error("h264ref must carry the SDE bug flag (paper's footnote 2)")
	}
}

func TestPovrayShorterBlocksThanLbm(t *testing.T) {
	pov, lbm := build(t, "povray"), build(t, "lbm")
	meanLen := func(w *Workload) float64 {
		var insts, blocks int
		for _, blk := range w.Prog.Blocks() {
			insts += blk.Len()
			blocks++
		}
		return float64(insts) / float64(blocks)
	}
	if meanLen(pov) >= meanLen(lbm) {
		t.Errorf("povray mean block %.1f should be shorter than lbm %.1f",
			meanLen(pov), meanLen(lbm))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := build(t, "gcc"), build(t, "gcc")
	if a.Prog.NumBlocks() != b.Prog.NumBlocks() {
		t.Fatal("generation is not deterministic")
	}
	for i, blk := range a.Prog.Blocks() {
		other := b.Prog.Blocks()[i]
		if blk.Addr != other.Addr || blk.Len() != other.Len() {
			t.Fatalf("block %d differs between generations", i)
		}
	}
}

func TestFitterVariantShapes(t *testing.T) {
	classTotals := func(v FitterVariant) (x87, sse, avx, calls uint64) {
		mix, _ := runMix(t, build(t, v.WorkloadName()), 10)
		for op, n := range mix {
			switch op.Info().Ext {
			case isa.X87:
				x87 += n
			case isa.SSE:
				sse += n
			case isa.AVX:
				avx += n
			}
			if op == isa.CALL {
				calls += n
			}
		}
		return
	}
	x87x, sseX, _, callsX := classTotals(FitterX87)
	_, sseS, _, callsS := classTotals(FitterSSE)
	x87B, _, avxB, callsB := classTotals(FitterAVX)
	x87F, _, avxF, callsF := classTotals(FitterAVXFix)

	// Scalar build: scalar SSE dominates, x87 is a small residue.
	if sseX < 5*x87x {
		t.Errorf("x87 build: SSE %d should dwarf x87 %d", sseX, x87x)
	}
	// SSE packs 4-wide: the math volume drops by roughly 4x.
	if ratio := float64(sseX) / float64(sseS); ratio < 2.5 || ratio > 6 {
		t.Errorf("scalar/SSE instruction ratio %.1f, want ~4", ratio)
	}
	// Broken AVX build: calls explode (Table 6: 99 -> 6150) and x87
	// spill code appears from nowhere (367 -> 3425).
	if callsB < 10*callsF {
		t.Errorf("broken AVX calls %d should dwarf fixed %d", callsB, callsF)
	}
	if x87B < 5*x87F+1 {
		t.Errorf("broken AVX x87 %d should dwarf fixed %d", x87B, x87F)
	}
	if callsX == 0 || callsS == 0 {
		t.Error("all variants should make some calls")
	}
	// Fixed AVX keeps the AVX math without the call/spill overhead.
	if avxF == 0 || avxB < avxF {
		t.Errorf("AVX volumes: broken %d, fixed %d", avxB, avxF)
	}
}

func TestFitterBrokenBuildSlower(t *testing.T) {
	perTrack := func(v FitterVariant) float64 {
		w := build(t, v.WorkloadName())
		stats, err := cpu.Run(w.Prog, w.Entry, cpu.Config{Seed: 1, Repeat: 3})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		return float64(stats.Cycles) / float64(3*fitterTracks)
	}
	x87c, ssec, avxBroken, avxFix := perTrack(FitterX87), perTrack(FitterSSE),
		perTrack(FitterAVX), perTrack(FitterAVXFix)
	// Expected half of Table 6: x87 slowest of the healthy builds, AVX
	// fastest; the broken build is many times slower than the fix.
	if !(x87c > ssec && ssec > avxFix) {
		t.Errorf("cycles/track: x87 %.0f, SSE %.0f, AVXfix %.0f — want descending", x87c, ssec, avxFix)
	}
	if avxBroken < 3*avxFix {
		t.Errorf("broken AVX %.0f cycles/track should be several times fixed %.0f", avxBroken, avxFix)
	}
}

func TestKernelPrimeRings(t *testing.T) {
	w := build(t, "kernel-prime")
	in := sde.New(w.Prog) // faithful: user-only
	all := sde.New(w.Prog)
	all.UserOnly = false
	stats, err := cpu.Run(w.Prog, w.Entry, cpu.Config{Seed: 1, Repeat: 2}, in, all)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.KernelRetired == 0 {
		t.Fatal("kernel function never ran")
	}
	uf := w.Prog.FuncByName("hello_u")
	kf := w.Prog.FuncByName("hello_k")
	if uf == nil || kf == nil {
		t.Fatal("hello_u/hello_k missing")
	}
	// SDE sees the user copy but not the kernel copy.
	if in.BlockExec(uf.Blocks[1].ID) == 0 {
		t.Error("SDE blind to user copy")
	}
	if in.BlockExec(kf.Blocks[1].ID) != 0 {
		t.Error("SDE saw kernel blocks")
	}
	// The two copies execute the same algorithm: the candidate-head
	// blocks should run the same number of times.
	if u, k := all.BlockExec(uf.Blocks[1].ID), all.BlockExec(kf.Blocks[1].ID); u != k {
		t.Errorf("user %d vs kernel %d executions of the candidate loop", u, k)
	}
	// The kernel copy carries a trace point; the user copy does not.
	hasTrace := func(f *program.Function) bool {
		for _, blk := range f.Blocks {
			if blk.TraceJump {
				return true
			}
		}
		return false
	}
	if hasTrace(uf) || !hasTrace(kf) {
		t.Error("trace points misplaced")
	}
	// Vocabulary check: the user copy retires only Table 7 mnemonics
	// plus the call/return scaffolding.
	allowed := map[isa.Op]bool{
		isa.ADD: true, isa.CDQE: true, isa.CMP: true, isa.IMUL: true,
		isa.JLE: true, isa.JNLE: true, isa.JNZ: true, isa.JZ: true,
		isa.MOV: true, isa.MOVSXD: true, isa.SUB: true, isa.TEST: true,
		isa.CALL: true, isa.RET_NEAR: true, isa.PUSH: true, isa.POP: true,
		isa.SYSCALL: true, isa.INC: true,
	}
	for op := range in.Mnemonics() {
		if !allowed[op] {
			t.Errorf("unexpected mnemonic %v in kernel-prime user code", op)
		}
	}
}

func TestCLForwardShape(t *testing.T) {
	before, after := build(t, "clforward-before"), build(t, "clforward-after")
	mixB, statsB := runMix(t, before, 20)
	mixF, statsF := runMix(t, after, 20)
	classify := func(mix map[isa.Op]uint64) (scalarAVX, packedAVX, total uint64) {
		for op, n := range mix {
			info := op.Info()
			total += n
			if info.Ext == isa.AVX {
				switch info.Packing {
				case isa.Scalar:
					scalarAVX += n
				case isa.Packed:
					packedAVX += n
				}
			}
		}
		return
	}
	sB, pB, _ := classify(mixB)
	sF, pF, _ := classify(mixF)
	// Table 8: scalar 14.7 -> 0.4, packed 1.5 -> 10.6, total shrinks.
	if sB <= pB {
		t.Errorf("before: scalar AVX %d should dominate packed %d", sB, pB)
	}
	if pF <= sF {
		t.Errorf("after: packed AVX %d should dominate scalar %d", pF, sF)
	}
	// Both builds run the same invocation count (RepeatOf calibration).
	if before.Repeat != after.Repeat {
		t.Errorf("repeat: before %d, after %d — the fix must not change invocations",
			before.Repeat, after.Repeat)
	}
	// Normalize per entry invocation: the fix reduces instruction volume.
	nb := float64(statsB.Retired) / float64(min(20, before.Repeat))
	nf := float64(statsF.Retired) / float64(min(20, after.Repeat))
	if nf >= nb {
		t.Errorf("fix should reduce per-run instructions: before %.0f, after %.0f", nb, nf)
	}
}

func TestTrainingCorpusDiversity(t *testing.T) {
	names := TrainingNames()
	if len(names) < 8 {
		t.Fatalf("corpus has %d workloads", len(names))
	}
	var totalBlocks int
	var sawShort, sawLong bool
	for _, name := range names {
		w := build(t, name)
		totalBlocks += w.Prog.NumBlocks()
		for _, blk := range w.Prog.Blocks() {
			if blk.Len() <= 3 {
				sawShort = true
			}
			if blk.Len() >= 25 {
				sawLong = true
			}
		}
	}
	// The paper trains on ~1,100 blocks.
	if totalBlocks < 800 || totalBlocks > 2500 {
		t.Errorf("corpus has %d blocks, want on the order of 1,100", totalBlocks)
	}
	if !sawShort || !sawLong {
		t.Error("corpus must span short and long blocks")
	}
}

func TestTest40IsShortBlockHeavy(t *testing.T) {
	w := build(t, "test40")
	var short, all int
	for _, blk := range w.Prog.Blocks() {
		all++
		if blk.Len() <= 6 {
			short++
		}
	}
	if frac := float64(short) / float64(all); frac < 0.6 {
		t.Errorf("only %.0f%% of Test40 blocks are short; it models short-method OO code", frac*100)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
