package workloads

import (
	"fmt"

	"hbbp/internal/collector"
)

// The non-SPEC training workloads of Section IV.B. The paper trains
// its classification trees "on approximately 1,100 basic blocks of
// training input from non-SPEC benchmarks"; the corpus here sweeps the
// structural dimensions that matter to the EBS/LBR decision — block
// length from 2 to 34 instructions, long-latency density, call/branch
// fragmentation — so the learned rule generalises rather than
// memorising one code shape.

// trainingDefs sweeps the structural dimensions of the corpus.
var trainingDefs = []struct {
	meanLen, spread int
	div             float64
	call, diamond   float64
	loop            float64
	funcs           int
	mix             MixProfile
}{
	{meanLen: 2, spread: 1, div: 0.01, call: 0.35, diamond: 0.40, loop: 0.08, funcs: 10, mix: MixProfile{Base: 1}},
	{meanLen: 4, spread: 2, div: 0.02, call: 0.28, diamond: 0.40, loop: 0.10, funcs: 10, mix: MixProfile{Base: 0.9, SSEScalar: 0.1}},
	{meanLen: 6, spread: 3, div: 0.05, call: 0.20, diamond: 0.35, loop: 0.15, funcs: 9, mix: MixProfile{Base: 0.8, SSEScalar: 0.2}},
	{meanLen: 8, spread: 4, div: 0.03, call: 0.15, diamond: 0.32, loop: 0.20, funcs: 8, mix: MixProfile{Base: 0.7, SSEScalar: 0.2, SSEPacked: 0.1}},
	{meanLen: 11, spread: 5, div: 0.04, call: 0.12, diamond: 0.28, loop: 0.25, funcs: 8, mix: MixProfile{Base: 0.7, SSEPacked: 0.3}},
	{meanLen: 14, spread: 6, div: 0.06, call: 0.10, diamond: 0.24, loop: 0.30, funcs: 7, mix: MixProfile{Base: 0.6, SSEPacked: 0.3, X87: 0.1}},
	{meanLen: 18, spread: 7, div: 0.03, call: 0.08, diamond: 0.20, loop: 0.34, funcs: 6, mix: MixProfile{Base: 0.5, SSEPacked: 0.4, SSEScalar: 0.1}},
	{meanLen: 22, spread: 8, div: 0.05, call: 0.06, diamond: 0.16, loop: 0.38, funcs: 6, mix: MixProfile{Base: 0.5, AVXPacked: 0.4, AVXScalar: 0.1}},
	{meanLen: 27, spread: 9, div: 0.04, call: 0.05, diamond: 0.12, loop: 0.42, funcs: 5, mix: MixProfile{Base: 0.45, AVXPacked: 0.45, SSEPacked: 0.1}},
	{meanLen: 32, spread: 10, div: 0.06, call: 0.04, diamond: 0.10, loop: 0.44, funcs: 5, mix: MixProfile{Base: 0.4, AVXPacked: 0.5, IntSIMD: 0.1}},
}

// hotLoopSeeds picks the tight-loop training programs. Multiple seeds
// shift code addresses, so different loops land on bias-prone branch
// sites in different programs — giving the trainer examples of
// concentrated LBR anomaly damage (the paper's Table 3 situation) as
// well as clean tight loops.
var hotLoopSeeds = []int64{0x11, 0x23, 0x37, 0x4D, 0x5F, 0x71}

// trainingSpecs lists the corpus specs in training order: the
// tight-loop kernels first, then the structural sweep.
func trainingSpecs() []ShapeSpec {
	out := make([]ShapeSpec, 0, len(hotLoopSeeds)+len(trainingDefs))
	for i, seed := range hotLoopSeeds {
		out = append(out, hotLoopSpec(i, seed))
	}
	for i, d := range trainingDefs {
		name := fmt.Sprintf("train%02d", i+1)
		out = append(out, ShapeSpec{
			Name:        name,
			Description: fmt.Sprintf("HBBP training workload (mean block length %d)", d.meanLen),
			Class:       collector.ClassSeconds,
			Scale:       1000,
			TargetInst:  2_500_000,
			Synth: &SynthSpec{
				Name:  name,
				Seed:  0x7EA1 + int64(i)*6151,
				Funcs: d.funcs,
				Profile: Profile{
					MeanBlockLen:   d.meanLen,
					BlockLenSpread: d.spread,
					Segments:       7,
					DiamondFrac:    d.diamond,
					LoopFrac:       d.loop,
					CallFrac:       d.call,
					DivFrac:        d.div,
					InnerTripMin:   3,
					InnerTripMax:   10,
					Mix:            d.mix,
				},
				OuterTrips: 30,
				LeafFrac:   0.6,
			},
		})
	}
	return out
}

// hotLoopSpec declares one tight-loop kernel: a small set of nested
// counted loops over short blocks, the code shape where a bias-prone
// branch dominates every LBR window.
func hotLoopSpec(i int, seed int64) ShapeSpec {
	name := fmt.Sprintf("trainloop%02d", i+1)
	return ShapeSpec{
		Name:        name,
		Description: "tight-loop HBBP training workload (concentrated LBR anomaly exposure)",
		Class:       collector.ClassSeconds,
		Scale:       1000,
		TargetInst:  1_200_000,
		Synth: &SynthSpec{
			Name:  name,
			Seed:  seed,
			Funcs: 2,
			Profile: Profile{
				MeanBlockLen:   4,
				BlockLenSpread: 2,
				Segments:       3,
				DiamondFrac:    0.2,
				LoopFrac:       0.6,
				CallFrac:       0.0,
				DivFrac:        0.02,
				InnerTripMin:   8,
				InnerTripMax:   30,
				Mix:            MixProfile{Base: 0.8, SSEScalar: 0.2},
			},
			OuterTrips: 60,
			LeafFrac:   1,
		},
	}
}

// TrainingNames lists the corpus workload names in training order —
// the harness collects them with per-index derived seeds, so the order
// is part of the learned model's determinism contract.
func TrainingNames() []string {
	specs := trainingSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
