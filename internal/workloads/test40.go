package workloads

import "hbbp/internal/collector"

// test40Spec models the Geant4-based particle-passage simulation of
// Section VIII.B: a large, complex, object-oriented C++ workload whose
// defining property for profiling purposes is that "its methods are
// short" — the case EBS struggles with. The shape produces a deep
// library of tiny virtual-method-like functions (physics processes,
// geometry navigation, stepping) called from a per-event loop.
func test40Spec() ShapeSpec {
	return ShapeSpec{
		Name:        "test40",
		Description: "Geant4-like particle simulation: object-oriented, short methods (Table 5, Figures 3-4)",
		Class:       collector.ClassSeconds,
		Scale:       3000,
		TargetInst:  5_000_000,
		Synth: &SynthSpec{
			Name:  "test40",
			Seed:  0x6EA47,
			Funcs: 40, // the "40" in Test40: forty short methods
			Profile: Profile{
				MeanBlockLen:   4,
				BlockLenSpread: 2,
				Segments:       5,
				DiamondFrac:    0.42,
				LoopFrac:       0.10,
				CallFrac:       0.30,
				DivFrac:        0.015,
				InnerTripMin:   2,
				InnerTripMax:   6,
				Mix:            MixProfile{Base: 0.82, SSEScalar: 0.16, X87: 0.02},
			},
			OuterTrips: 25, // events per entry invocation
			LeafFrac:   0.55,
		},
	}
}

// hydroPostSpec models the post-processing stage of a hydrodynamics
// code — the workload with the paper's worst instrumentation slowdown
// (76.6x in Table 1). Its shape is pathological for software
// instrumentation: one- and two-instruction basic blocks, near-total
// branch/call density, and almost no straight-line work for the
// instrumented code to amortise dispatch against.
func hydroPostSpec() ShapeSpec {
	return ShapeSpec{
		Name:        "hydro-post",
		Description: "hydrodynamics post-processing: pathologically short blocks (Table 1's 76.6x SDE extreme)",
		Class:       collector.ClassMinuteOrTwo,
		Scale:       10_000,
		TargetInst:  4_000_000,
		Synth: &SynthSpec{
			Name:  "hydro-post",
			Seed:  0x44D120,
			Funcs: 24,
			Profile: Profile{
				MeanBlockLen:   1,
				BlockLenSpread: 1,
				Segments:       4,
				DiamondFrac:    0.40,
				LoopFrac:       0.04,
				CallFrac:       0.50,
				DivFrac:        0.002,
				InnerTripMin:   2,
				InnerTripMax:   4,
				Mix:            MixProfile{Base: 0.92, SSEScalar: 0.08},
			},
			OuterTrips: 30,
			LeafFrac:   0.5,
		},
	}
}

// caseStudySpecs lists the paper's non-SPEC case studies, in the
// historical façade listing order.
func caseStudySpecs() []ShapeSpec {
	specs := []ShapeSpec{
		test40Spec(),
		hydroPostSpec(),
		kernelPrimeSpec(),
		clforwardSpec(false),
		clforwardSpec(true),
	}
	for _, v := range FitterVariants() {
		specs = append(specs, fitterSpec(v))
	}
	return specs
}
