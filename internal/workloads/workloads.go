// Package workloads provides deterministic synthetic workload
// generators standing in for the paper's benchmark suite, organised as
// a declarative shape-spec registry.
//
// The paper's evaluation characterises workloads purely by *shape*:
// basic-block length distributions, branch and call densities,
// ISA-class mixes, and total retirement volume. Each workload here is
// a [ShapeSpec] — plain data carrying those dimensions — compiled by
// one generic generator ([Synthesize]) into a program, or by a bespoke
// CFG builder for the case studies whose structure the paper spells
// out. A [Registry] owns the specs and their calibration (memoized
// dry runs), so workload construction is concurrency-safe and the
// harness builds workloads inside its worker pool.
//
// The built-in table ([Default]) covers:
//
//   - The SPEC CPU2006 stand-ins of Figure 2 and Table 1 (29 specs).
//   - The paper's case studies: the Geant4-based Test40, the Fitter
//     variants (x87/SSE/AVX, including the broken-inlining AVX build
//     of Table 6), the CLForward vectorization study (Table 8), the
//     Hydro-post benchmark (Table 1), and the user+kernel prime
//     search of Table 7.
//   - The training corpus of Section IV.B (train01..train10 and the
//     tight-loop trainloop01..trainloop06 programs).
//   - Four extra scenario families probing shapes the paper's suite
//     does not isolate: pointer-chase (memory-bound load chains),
//     phase-alternating (vectorized and scalar phases in one image),
//     megamorphic-branchy (dense data-dependent branching over a wide
//     callee set) and callgraph-deep (deep call chains of tiny
//     functions).
//
// None of the real codes can run here (no x86 binaries, no Pin, no
// hardware PMU), but the evaluation never depends on their semantics —
// only on their shape, reproduced with fixed seeds so every run is
// deterministic.
package workloads

import (
	"fmt"

	"hbbp/internal/collector"
	"hbbp/internal/cpu"
	"hbbp/internal/program"
	"hbbp/internal/sde"
)

// Workload is a runnable benchmark: a program, its entry point and its
// execution scaling. Obtain one from a [Registry].
type Workload struct {
	// Name identifies the workload (e.g. "povray", "test40").
	Name string
	// Prog is the static program. Registry-built workloads share one
	// immutable snapshotted image per entry (see Image); runs never
	// mutate a finished program, so sharing is safe at any concurrency.
	Prog *program.Program
	// Entry is the function invoked Repeat times per run.
	Entry *program.Function
	// Image, when non-nil, is the snapshot Prog was checked out of —
	// the copy-on-write handle for live-text materialization. Nil for
	// one-off BuildSpec workloads, which own a fresh image.
	Image *program.Snapshot
	// Layout, when non-nil, is the program's precomputed execution
	// dispatch table, shared by every build of the same registry entry
	// (see cpu.NewLayout). Nil makes each run derive its own.
	Layout *cpu.Layout
	// SDE, when non-nil, is the program's precomputed instrumentation
	// profile table, shared like Layout (see sde.NewStatic).
	SDE *sde.Static
	// Repeat is the calibrated invocation count for a full run.
	Repeat int
	// Class selects the Table 4 sampling periods.
	Class collector.RuntimeClass
	// Scale maps simulated retirements to real ones: the real workload
	// retired Scale times more instructions than the simulator does.
	Scale uint64
	// SDEBug marks workloads for which the reference tool produces
	// corrupt results (the paper's x264ref footnote); they are excluded
	// from error aggregation.
	SDEBug bool
	// Description summarises what the workload models.
	Description string
}

// String returns the workload name.
func (w *Workload) String() string { return w.Name }

// calibrationMaxRetired guards calibration dry runs against runaway
// specs: built-in workloads retire ~10^5 instructions per invocation,
// so the bound leaves three orders of magnitude of headroom while
// keeping a misauthored custom spec from spinning forever.
const calibrationMaxRetired = 200_000_000

// InstructionsPerRun returns the retirements of a single entry
// invocation, measured by a dry run. The result is deterministic.
// Failures wrap [ErrBuild] and keep their cause on the unwrap chain —
// a runaway program reports cpu.ErrRetireLimit under errors.Is.
func (w *Workload) InstructionsPerRun() (uint64, error) {
	stats, err := cpu.Run(w.Prog, w.Entry, cpu.Config{
		Seed: 1, Repeat: 1, MaxRetired: calibrationMaxRetired,
		Layout: w.Layout,
	})
	if err != nil {
		return 0, fmt.Errorf("%w: %s dry run: %w", ErrBuild, w.Name, err)
	}
	return stats.Retired, nil
}

// Scaled returns a copy of the workload with Repeat multiplied by
// factor (0 < factor <= 1), for fast test runs. Sampling statistics
// shrink proportionally; Repeat never drops below 1.
func (w *Workload) Scaled(factor float64) *Workload {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("workloads: bad scale factor %g", factor))
	}
	out := *w
	out.Repeat = int(float64(w.Repeat) * factor)
	if out.Repeat < 1 {
		out.Repeat = 1
	}
	return &out
}

// mustFinish panics on builder errors: generator bugs are programming
// errors, not runtime conditions.
func mustFinish(b *program.Builder, name string) *program.Program {
	p, err := b.Finish()
	if err != nil {
		panic(fmt.Sprintf("workloads: building %s: %v", name, err))
	}
	return p
}
