// Package workloads provides deterministic synthetic workload generators
// standing in for the paper's benchmark suite: the SPEC CPU2006
// workloads of Figure 2, the Geant4-based Test40, the Fitter variants
// (x87/SSE/AVX, including the broken-inlining AVX build of Table 6), the
// CLForward vectorization case study (Table 8), the Hydro-post
// benchmark (Table 1) and the synthetic user+kernel prime search of
// Table 7.
//
// None of the real codes can run here (no x86 binaries, no Pin, no
// hardware PMU), but the evaluation never depends on their semantics —
// only on their *shape*: basic-block length distributions, branch and
// call densities, ISA-class mixes, and total retirement volume. Each
// generator reproduces the shape the paper attributes to its workload,
// with a fixed seed so every run is reproducible.
package workloads

import (
	"fmt"

	"hbbp/internal/collector"
	"hbbp/internal/cpu"
	"hbbp/internal/program"
)

// Workload is a runnable benchmark: a program, its entry point and its
// execution scaling.
type Workload struct {
	// Name identifies the workload (e.g. "povray", "test40").
	Name string
	// Prog is the static program.
	Prog *program.Program
	// Entry is the function invoked Repeat times per run.
	Entry *program.Function
	// Repeat is the calibrated invocation count for a full run.
	Repeat int
	// Class selects the Table 4 sampling periods.
	Class collector.RuntimeClass
	// Scale maps simulated retirements to real ones: the real workload
	// retired Scale times more instructions than the simulator does.
	Scale uint64
	// SDEBug marks workloads for which the reference tool produces
	// corrupt results (the paper's x264ref footnote); they are excluded
	// from error aggregation.
	SDEBug bool
	// Description summarises what the workload models.
	Description string
}

// String returns the workload name.
func (w *Workload) String() string { return w.Name }

// InstructionsPerRun returns the retirements of a single entry
// invocation, measured by a dry run. The result is deterministic.
func (w *Workload) InstructionsPerRun() uint64 {
	stats, err := cpu.Run(w.Prog, w.Entry, cpu.Config{Seed: 1, Repeat: 1})
	if err != nil {
		panic(fmt.Sprintf("workloads: %s dry run failed: %v", w.Name, err))
	}
	return stats.Retired
}

// calibrateRepeat sets Repeat so a full run retires about target
// simulated instructions.
func (w *Workload) calibrateRepeat(target uint64) {
	per := w.InstructionsPerRun()
	if per == 0 {
		w.Repeat = 1
		return
	}
	w.Repeat = int(target / per)
	if w.Repeat < 1 {
		w.Repeat = 1
	}
}

// Scaled returns a copy of the workload with Repeat multiplied by
// factor (0 < factor <= 1), for fast test runs. Sampling statistics
// shrink proportionally.
func (w *Workload) Scaled(factor float64) *Workload {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("workloads: bad scale factor %g", factor))
	}
	out := *w
	out.Repeat = int(float64(w.Repeat) * factor)
	if out.Repeat < 1 {
		out.Repeat = 1
	}
	return &out
}

// mustFinish panics on builder errors: generator bugs are programming
// errors, not runtime conditions.
func mustFinish(b *program.Builder, name string) *program.Program {
	p, err := b.Finish()
	if err != nil {
		panic(fmt.Sprintf("workloads: building %s: %v", name, err))
	}
	return p
}
