package workloads

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

var updateGoldenMix = flag.Bool("update", false, "rewrite golden mix files")

// familyMix runs a few invocations of a family workload under the
// exact instrumentation reference and renders the user+kernel
// mnemonic histogram as sorted "OP count" lines — a deterministic
// fingerprint of the generated program and its execution.
func familyMix(t *testing.T, name string) string {
	t.Helper()
	w := build(t, name)
	mix, _ := runMix(t, w, 3)
	lines := make([]string, 0, len(mix))
	for op, n := range mix {
		lines = append(lines, fmt.Sprintf("%s %d", op, n))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestFamilyGoldenMixes pins each new scenario family to a golden
// mnemonic mix: same spec, same seed, same generator ⇒ the same
// instructions retire the same number of times, forever. A drifting
// golden means the generator changed under existing specs — exactly
// what the gating in synth.go forbids.
func TestFamilyGoldenMixes(t *testing.T) {
	for _, name := range FamilyNames() {
		got := familyMix(t, name)
		path := filepath.Join("testdata", "goldenmix_"+name+".txt")
		if *updateGoldenMix {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden mix (regenerate with -update): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s mix drifted from golden:\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}
}

// classFractions aggregates a mnemonic mix into the structural
// fractions the family shape assertions check.
func classFractions(t *testing.T, name string) (memRead, condBr, call, avxPacked, scalarBase float64) {
	t.Helper()
	mix, _ := runMix(t, build(t, name), 3)
	var total uint64
	for op, n := range mix {
		info := op.Info()
		total += n
		if info.ReadsMem && info.Cat != isa.CatReturn && info.Cat != isa.CatStack {
			memRead += float64(n)
		}
		switch info.Cat {
		case isa.CatCondBranch:
			condBr += float64(n)
		case isa.CatCall:
			call += float64(n)
		}
		if info.Ext == isa.AVX && info.Packing == isa.Packed {
			avxPacked += float64(n)
		}
		if info.Ext == isa.Base {
			scalarBase += float64(n)
		}
	}
	f := float64(total)
	return memRead / f, condBr / f, call / f, avxPacked / f, scalarBase / f
}

// TestPointerChaseIsMemoryBound: the defining property is a
// load-dominated retirement stream.
func TestPointerChaseIsMemoryBound(t *testing.T) {
	memRead, _, call, _, _ := classFractions(t, "pointer-chase")
	if memRead < 0.45 {
		t.Errorf("memory-read fraction %.2f, want a load-dominated stream (>= 0.45)", memRead)
	}
	if call > 0.05 {
		t.Errorf("call fraction %.2f, want a near-leaf traversal", call)
	}
}

// TestPhaseAlternatingIsBimodal: both the packed-AVX and the scalar
// phase must contribute substantially, and individual helper functions
// must be nearly pure one phase or the other (the bimodality the
// family exists to produce).
func TestPhaseAlternatingIsBimodal(t *testing.T) {
	_, _, _, avxPacked, scalarBase := classFractions(t, "phase-alternating")
	if avxPacked < 0.15 {
		t.Errorf("packed AVX fraction %.2f, want a real vectorized phase", avxPacked)
	}
	if scalarBase < 0.25 {
		t.Errorf("scalar base fraction %.2f, want a real scalar phase", scalarBase)
	}
	// Static bimodality: every helper is dominated by one phase.
	w := build(t, "phase-alternating")
	for _, mod := range w.Prog.Modules {
		for _, f := range mod.Funcs {
			if f.Name == "phase-alternating_main" {
				continue
			}
			var avx, base, all int
			for _, blk := range f.Blocks {
				for _, op := range blk.Ops {
					info := op.Info()
					all++
					switch {
					case info.Ext == isa.AVX:
						avx++
					case info.Ext == isa.Base:
						base++
					}
				}
			}
			avxFrac := float64(avx) / float64(all)
			if avxFrac > 0.15 && avxFrac < 0.30 {
				t.Errorf("%s: AVX fraction %.2f is mid-range; phases should be bimodal", f.Name, avxFrac)
			}
		}
	}
}

// TestMegamorphicBranchyIsBranchDense: conditional branches dominate
// beyond the SPEC stand-ins, their taken probabilities span the whole
// range (no predictably biased branch), and dispatch fans out over a
// wide callee set.
func TestMegamorphicBranchyIsBranchDense(t *testing.T) {
	_, condBr, call, _, _ := classFractions(t, "megamorphic-branchy")
	if condBr < 0.10 {
		t.Errorf("conditional-branch fraction %.2f, want dense branching", condBr)
	}
	if call < 0.02 {
		t.Errorf("call fraction %.2f, want a wide dispatch fan-out", call)
	}
	w := build(t, "megamorphic-branchy")
	minProb, maxProb := 1.0, 0.0
	for _, blk := range w.Prog.Blocks() {
		if blk.Term.Kind != program.TermCond {
			continue
		}
		if blk.Term.Prob < minProb {
			minProb = blk.Term.Prob
		}
		if blk.Term.Prob > maxProb {
			maxProb = blk.Term.Prob
		}
	}
	if minProb > 0.2 || maxProb < 0.8 {
		t.Errorf("taken probabilities span [%.2f, %.2f]; megamorphic branches must be unbiased in aggregate",
			minProb, maxProb)
	}
}

// TestCallgraphDeepChains: the static call graph must actually be
// CallDepth layers deep, and call/return scaffolding must dominate.
func TestCallgraphDeepChains(t *testing.T) {
	w := build(t, "callgraph-deep")
	callees := map[string][]string{}
	for _, mod := range w.Prog.Modules {
		for _, f := range mod.Funcs {
			for _, blk := range f.Blocks {
				if blk.Term.Kind == program.TermCall && blk.Term.Callee != nil {
					callees[f.Name] = append(callees[f.Name], blk.Term.Callee.Name)
				}
			}
		}
	}
	var depth func(fn string, seen map[string]bool) int
	depth = func(fn string, seen map[string]bool) int {
		if seen[fn] {
			return 0
		}
		seen[fn] = true
		max := 0
		for _, c := range callees[fn] {
			if d := depth(c, seen); d > max {
				max = d
			}
		}
		delete(seen, fn)
		return max + 1
	}
	if d := depth(w.Entry.Name, map[string]bool{}); d < 6 {
		t.Errorf("static call depth %d frames, want >= 6", d)
	}
	// Call/return/stack scaffolding dominates retirement: every frame
	// of the chain pays CALL+RET+PUSH+POP around a tiny body.
	mix, _ := runMix(t, w, 3)
	var scaffolding, total uint64
	for op, n := range mix {
		total += n
		switch op.Info().Cat {
		case isa.CatCall, isa.CatReturn, isa.CatStack:
			scaffolding += n
		}
	}
	if frac := float64(scaffolding) / float64(total); frac < 0.10 {
		t.Errorf("scaffolding fraction %.2f, want call/return-dominated retirement (>= 0.10)", frac)
	}
}
