package workloads

import "hbbp/internal/collector"

// The extra scenario families: spec-defined workloads probing code
// shapes the paper's suite does not isolate. Each stresses a different
// axis of the EBS/LBR decision surface, so they double as
// out-of-distribution checks on the learned chooser.

// pointerChaseSpec is a memory-bound linked-structure traversal:
// load-dominated short blocks (MOV/MOVZX/MOVSXD chains with the
// compare guarding each hop), deep counted loops, almost no calls.
// High mem_frac with low long-latency density — the opposite corner
// from hmmer's divide-dense loops.
func pointerChaseSpec() ShapeSpec {
	return ShapeSpec{
		Name:        "pointer-chase",
		Description: "memory-bound pointer chase: load-dominated short blocks, deep loops",
		Class:       collector.ClassMinuteOrTwo,
		Scale:       10_000,
		TargetInst:  3_000_000,
		Synth: &SynthSpec{
			Name:  "pointer-chase",
			Seed:  0x9C4A5E,
			Funcs: 4,
			Profile: Profile{
				MeanBlockLen:   3,
				BlockLenSpread: 1,
				Segments:       6,
				DiamondFrac:    0.15,
				LoopFrac:       0.55,
				CallFrac:       0.05,
				DivFrac:        0.002,
				InnerTripMin:   8,
				InnerTripMax:   24,
				Mix:            MixProfile{Base: 0.15, Mem: 0.85},
			},
			OuterTrips: 40,
			LeafFrac:   1,
		},
	}
}

// phaseAlternatingSpec interleaves vectorized and scalar phases in one
// image: even helpers are packed-AVX numeric kernels, odd helpers are
// scalar integer bookkeeping. Per-block mixes are bimodal, so any
// profiler averaging across blocks (or sampling one phase more than
// the other) misreports the packing split the paper's Table 8 view
// depends on.
func phaseAlternatingSpec() ShapeSpec {
	return ShapeSpec{
		Name:        "phase-alternating",
		Description: "alternating vectorized and scalar phases in one image (bimodal per-block mixes)",
		Class:       collector.ClassMinutes,
		Scale:       50_000,
		TargetInst:  4_000_000,
		Synth: &SynthSpec{
			Name:  "phase-alternating",
			Seed:  0xA17E4,
			Funcs: 8,
			Profile: Profile{
				MeanBlockLen:   12,
				BlockLenSpread: 5,
				Segments:       7,
				DiamondFrac:    0.20,
				LoopFrac:       0.35,
				CallFrac:       0.10,
				DivFrac:        0.01,
				InnerTripMin:   4,
				InnerTripMax:   14,
			},
			PhaseMixes: []MixProfile{
				{Base: 0.25, AVXPacked: 0.6, AVXScalar: 0.15}, // vectorized phase
				{Base: 0.9, SSEScalar: 0.1},                   // scalar phase
			},
			OuterTrips: 35,
			LeafFrac:   0.7,
		},
	}
}

// megamorphicBranchySpec is dense data-dependent branching over a wide
// callee set — the shape of a megamorphic interpreter dispatch loop:
// tiny blocks, diamonds with taken probabilities spread across the
// whole range (no branch predictably biased), and call sites fanning
// out over many small targets. Maximum structural stress for the LBR
// estimator's per-branch windows.
func megamorphicBranchySpec() ShapeSpec {
	return ShapeSpec{
		Name:        "megamorphic-branchy",
		Description: "megamorphic dispatch: dense unbiased branching over a wide callee set",
		Class:       collector.ClassMinuteOrTwo,
		Scale:       20_000,
		TargetInst:  3_500_000,
		Synth: &SynthSpec{
			Name:  "megamorphic-branchy",
			Seed:  0x3E6A11,
			Funcs: 28,
			Profile: Profile{
				MeanBlockLen:   2,
				BlockLenSpread: 1,
				Segments:       6,
				DiamondFrac:    0.56,
				LoopFrac:       0.02,
				CallFrac:       0.32,
				DivFrac:        0.004,
				InnerTripMin:   2,
				InnerTripMax:   3,
				TakenProbMin:   0.05,
				TakenProbMax:   0.95,
				Mix:            MixProfile{Base: 1},
			},
			OuterTrips: 30,
			LeafFrac:   0.5,
		},
	}
}

// callgraphDeepSpec layers tiny functions into call chains six frames
// deep: most retirement is call/return scaffolding and short leaf
// bodies — the recursive-descent shape where EBS samples scatter
// across many small frames.
func callgraphDeepSpec() ShapeSpec {
	return ShapeSpec{
		Name:        "callgraph-deep",
		Description: "deep call chains of tiny functions (call/return-dominated retirement)",
		Class:       collector.ClassSeconds,
		Scale:       3000,
		TargetInst:  3_000_000,
		Synth: &SynthSpec{
			Name:  "callgraph-deep",
			Seed:  0xDEE9C4,
			Funcs: 18,
			Profile: Profile{
				MeanBlockLen:   3,
				BlockLenSpread: 1,
				Segments:       4,
				DiamondFrac:    0.22,
				LoopFrac:       0.06,
				CallFrac:       0.50,
				DivFrac:        0.005,
				InnerTripMin:   2,
				InnerTripMax:   4,
				Mix:            MixProfile{Base: 0.85, SSEScalar: 0.15},
			},
			CallDepth:  6,
			OuterTrips: 20,
		},
	}
}

// FamilyNames lists the extra scenario families in registration order.
func FamilyNames() []string {
	return []string{"pointer-chase", "phase-alternating", "megamorphic-branchy", "callgraph-deep"}
}

// familySpecs assembles the extra families.
func familySpecs() []ShapeSpec {
	return []ShapeSpec{
		pointerChaseSpec(),
		phaseAlternatingSpec(),
		megamorphicBranchySpec(),
		callgraphDeepSpec(),
	}
}
