package workloads

import (
	"hbbp/internal/collector"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// clforwardSpec models the online HPC code of Section VIII.E /
// Table 8: a forward-projection kernel that initially compiled to
// scalar AVX instructions because of an #omp simd reduction issue.
// HBBP's packing view exposed the scalar hotspot; after the fix, a
// large number of scalar instructions is replaced by a smaller number
// of packed ones and total instruction volume drops (19.2B -> 15.8B in
// the paper).
//
// clforwardSpec(false) is the pre-fix build, clforwardSpec(true) the
// vectorized one. Both builds perform the same number of kernel
// invocations — the fix's point is that the same work takes fewer
// instructions (Table 8's shrinking TOTAL row) — so the fixed build's
// spec calibrates by reference (RepeatOf) against the pre-fix build,
// through the registry's memoized calibration instead of the old
// unsynchronized package cache.
func clforwardSpec(fixed bool) ShapeSpec {
	name := "clforward-before"
	if fixed {
		name = "clforward-after"
	}
	spec := ShapeSpec{
		Name:        name,
		Description: "online HPC forward projection, vectorization case study (Table 8)",
		Class:       collector.ClassMinuteOrTwo,
		Scale:       20_000,
		Program:     func() (*program.Program, *program.Function) { return clforwardProgram(fixed) },
	}
	if fixed {
		spec.RepeatOf = "clforward-before"
	} else {
		spec.TargetInst = 2_500_000
	}
	return spec
}

// clforwardProgram builds the forward-projection image for one build.
func clforwardProgram(fixed bool) (*program.Program, *program.Function) {
	name := "clforward-before"
	if fixed {
		name = "clforward-after"
	}
	b := program.NewBuilder(name)
	mod := b.Module("clforward", program.RingUser)

	kernel := b.Function(mod, "forward_project")
	entry := b.Block(kernel, isa.PUSH, isa.MOV)

	var loopBody []isa.Op
	var trips int
	if fixed {
		// Packed: 8 lanes per operation, 2 iterations, plus the
		// unpacked AVX housekeeping (VZEROUPPER and friends) the fix
		// introduced — Table 8's NONE bucket going from 0.0 to 3.3.
		loopBody = []isa.Op{
			isa.VMOVAPS, isa.VBROADCASTSS,
			isa.VFMADD231PS, isa.VMULPS, isa.VADDPS, isa.VSUBPS,
			isa.VMOVUPS, isa.VFMADD231PS, isa.VMULPS, isa.VADDPS,
			isa.VZEROUPPER, isa.VZEROUPPER,
			isa.MOV,
		}
		trips = 2
	} else {
		// Scalar: one lane at a time, 10 iterations of scalar AVX ops
		// with extra scalar integer bookkeeping per element.
		loopBody = []isa.Op{
			isa.VMOVSS, isa.VMOVSS,
			isa.VFMADD231SS, isa.VMULSS, isa.VADDSS,
			isa.VFMADD231SS, isa.VMULSS, isa.VADDSS,
			isa.VMULSS, isa.VADDSS,
			isa.MOV, isa.ADD,
		}
		trips = 5
	}

	head := b.Block(kernel, loopBody...)
	latch := b.Block(kernel, isa.INC, isa.CMP)
	exit := b.Block(kernel, isa.MOV, isa.POP)
	b.Fallthrough(entry, head)
	b.Fallthrough(head, latch)
	b.Loop(latch, isa.JNZ, head, exit, trips)
	b.Return(exit)

	main := b.Function(mod, "main")
	mentry := b.Block(main, isa.PUSH, isa.MOV)
	mhead := b.Block(main, isa.MOV)
	after := b.Block(main, isa.MOV)
	mlatch := b.Block(main, isa.ADD, isa.CMP)
	mexit := b.Block(main, isa.POP)
	b.Fallthrough(mentry, mhead)
	b.Call(mhead, kernel, after)
	b.Fallthrough(after, mlatch)
	b.Loop(mlatch, isa.JLE, mhead, mexit, 500)
	b.Return(mexit)

	return mustFinish(b, name), main
}
