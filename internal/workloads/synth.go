package workloads

import (
	"fmt"
	"math/rand"

	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// MixProfile weights the instruction-class pools a generator draws from.
// Zero-valued profiles produce pure scalar integer code.
type MixProfile struct {
	Base      float64 // scalar integer ALU/moves
	SSEScalar float64 // ADDSS-class scalar SSE
	SSEPacked float64 // ADDPS-class packed SSE
	AVXScalar float64 // VADDSS-class scalar AVX
	AVXPacked float64 // VADDPS-class packed AVX
	X87       float64 // legacy FP stack
	IntSIMD   float64 // PADDD-class integer SIMD
	Mem       float64 // load-dominated pointer-chase traffic
}

// normalize returns cumulative weights for sampling; all-zero profiles
// degrade to pure Base.
func (m MixProfile) normalize() MixProfile {
	total := m.Base + m.SSEScalar + m.SSEPacked + m.AVXScalar + m.AVXPacked + m.X87 + m.IntSIMD + m.Mem
	if total == 0 {
		return MixProfile{Base: 1}
	}
	return MixProfile{
		Base:      m.Base / total,
		SSEScalar: m.SSEScalar / total,
		SSEPacked: m.SSEPacked / total,
		AVXScalar: m.AVXScalar / total,
		AVXPacked: m.AVXPacked / total,
		X87:       m.X87 / total,
		IntSIMD:   m.IntSIMD / total,
		Mem:       m.Mem / total,
	}
}

// Instruction pools per class. Pools deliberately reuse the mnemonics
// that appear in the paper's tables and figures.
var (
	poolBase = []isa.Op{
		isa.MOV, isa.MOV, isa.MOV, isa.ADD, isa.ADD, isa.SUB, isa.LEA,
		isa.CMP, isa.TEST, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.MOVZX, isa.MOVSXD, isa.INC, isa.DEC, isa.IMUL, isa.CDQE,
	}
	poolSSEScalar = []isa.Op{
		isa.MOVSS, isa.ADDSS, isa.MULSS, isa.SUBSS, isa.UCOMISS,
		isa.CVTSI2SS, isa.CVTSI2SD, isa.MOVSD_X, isa.SQRTSS,
	}
	poolSSEPacked = []isa.Op{
		isa.MOVAPS, isa.ADDPS, isa.MULPS, isa.SUBPS, isa.XORPS,
		isa.MINPS, isa.MAXPS, isa.SHUFPS, isa.UNPCKLPS, isa.CMPPS,
	}
	poolAVXScalar = []isa.Op{
		isa.VMOVSS, isa.VADDSS, isa.VMULSS, isa.VUCOMISS, isa.VCVTSI2SS,
		isa.VFMADD231SS,
	}
	poolAVXPacked = []isa.Op{
		isa.VMOVAPS, isa.VADDPS, isa.VMULPS, isa.VSUBPS, isa.VXORPS,
		isa.VFMADD231PS, isa.VMINPS, isa.VMAXPS, isa.VBROADCASTSS,
		isa.VSHUFPS,
	}
	poolX87 = []isa.Op{
		isa.FLD, isa.FSTP, isa.FADD, isa.FMUL, isa.FSUB, isa.FXCH,
		isa.FCOMI, isa.FILD,
	}
	poolIntSIMD = []isa.Op{
		isa.PADDD, isa.PSUBD, isa.PMULLD, isa.PAND, isa.POR, isa.PCMPEQD,
		isa.MOVD,
	}
	// poolMem is load-dominated: the dependent-address traffic of a
	// pointer chase (next = node->next), with the index arithmetic and
	// guard compares around it.
	poolMem = []isa.Op{
		isa.MOV, isa.MOV, isa.MOV, isa.MOV, isa.MOVZX, isa.MOVSXD,
		isa.MOVSXD, isa.LEA, isa.CMP, isa.TEST,
	}
	poolDiv    = []isa.Op{isa.DIV, isa.IDIV, isa.DIVSS, isa.FDIV, isa.DIVPS, isa.SQRTSS}
	poolCondBr = []isa.Op{
		isa.JZ, isa.JNZ, isa.JLE, isa.JNLE, isa.JL, isa.JNL, isa.JB, isa.JS,
	}
)

// opPicker draws instructions according to a mix profile.
type opPicker struct {
	rng *rand.Rand
	mix MixProfile
}

func newOpPicker(rng *rand.Rand, mix MixProfile) *opPicker {
	return &opPicker{rng: rng, mix: mix.normalize()}
}

func (p *opPicker) fromPool(pool []isa.Op) isa.Op {
	return pool[p.rng.Intn(len(pool))]
}

// pick draws one non-branch instruction.
func (p *opPicker) pick() isa.Op {
	r := p.rng.Float64()
	m := p.mix
	switch {
	case r < m.Base:
		return p.fromPool(poolBase)
	case r < m.Base+m.SSEScalar:
		return p.fromPool(poolSSEScalar)
	case r < m.Base+m.SSEScalar+m.SSEPacked:
		return p.fromPool(poolSSEPacked)
	case r < m.Base+m.SSEScalar+m.SSEPacked+m.AVXScalar:
		return p.fromPool(poolAVXScalar)
	case r < m.Base+m.SSEScalar+m.SSEPacked+m.AVXScalar+m.AVXPacked:
		return p.fromPool(poolAVXPacked)
	case r < m.Base+m.SSEScalar+m.SSEPacked+m.AVXScalar+m.AVXPacked+m.X87:
		return p.fromPool(poolX87)
	default:
		// Mem draws from the tail beyond IntSIMD, so profiles without a
		// Mem weight keep their historical draw mapping bit-exactly
		// (floating-point rounding of the cumulative sum included).
		if m.Mem > 0 &&
			r >= m.Base+m.SSEScalar+m.SSEPacked+m.AVXScalar+m.AVXPacked+m.X87+m.IntSIMD {
			return p.fromPool(poolMem)
		}
		return p.fromPool(poolIntSIMD)
	}
}

// setMix switches the picker onto another profile (the
// phase-alternating family swaps mixes between functions). The switch
// consumes no randomness, so gated callers leave draw sequences
// untouched.
func (p *opPicker) setMix(mix MixProfile) { p.mix = mix.normalize() }

// condBranch draws a conditional branch opcode.
func (p *opPicker) condBranch() isa.Op { return p.fromPool(poolCondBr) }

// div draws a long-latency opcode.
func (p *opPicker) div() isa.Op { return p.fromPool(poolDiv) }

// Profile parameterises a synthetic function/program generator.
type Profile struct {
	// MeanBlockLen and BlockLenSpread control block body sizes
	// (uniform in [Mean-Spread, Mean+Spread], floored at 1).
	MeanBlockLen   int
	BlockLenSpread int
	// Segments is the number of structural segments per function body.
	Segments int
	// DiamondFrac, LoopFrac and CallFrac are the per-segment
	// probabilities of emitting an if/else diamond, an inner counted
	// loop, or a call (remainder: straight-line block).
	DiamondFrac, LoopFrac, CallFrac float64
	// DivFrac is the probability a block body includes one
	// long-latency instruction.
	DivFrac float64
	// InnerTripMin/Max bound inner loop trip counts.
	InnerTripMin, InnerTripMax int
	// TakenProbMin/Max bound diamond taken-probabilities.
	TakenProbMin, TakenProbMax float64
	// Mix selects the instruction-class pools.
	Mix MixProfile
}

func (pr Profile) withDefaults() Profile {
	if pr.MeanBlockLen == 0 {
		pr.MeanBlockLen = 6
	}
	if pr.Segments == 0 {
		pr.Segments = 6
	}
	if pr.InnerTripMin == 0 {
		pr.InnerTripMin = 2
	}
	if pr.InnerTripMax < pr.InnerTripMin {
		pr.InnerTripMax = pr.InnerTripMin + 6
	}
	if pr.TakenProbMax == 0 {
		pr.TakenProbMin, pr.TakenProbMax = 0.15, 0.85
	}
	return pr
}

// blockLen draws a block body length.
func (pr Profile) blockLen(rng *rand.Rand) int {
	n := pr.MeanBlockLen
	if pr.BlockLenSpread > 0 {
		n += rng.Intn(2*pr.BlockLenSpread+1) - pr.BlockLenSpread
	}
	if n < 1 {
		n = 1
	}
	return n
}

// synthesizer builds structured functions into one builder.
type synthesizer struct {
	b    *program.Builder
	rng  *rand.Rand
	pick *opPicker
	prof Profile
}

func newSynthesizer(b *program.Builder, seed int64, prof Profile) *synthesizer {
	prof = prof.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	return &synthesizer{b: b, rng: rng, pick: newOpPicker(rng, prof.Mix), prof: prof}
}

// body draws a block body of the profile's length distribution.
func (s *synthesizer) body(minLen int) []isa.Op {
	n := s.prof.blockLen(s.rng)
	if n < minLen {
		n = minLen
	}
	ops := make([]isa.Op, 0, n)
	divAt := -1
	if s.prof.DivFrac > 0 && s.rng.Float64() < s.prof.DivFrac {
		divAt = s.rng.Intn(n)
	}
	for i := 0; i < n; i++ {
		if i == divAt {
			ops = append(ops, s.pick.div())
			continue
		}
		ops = append(ops, s.pick.pick())
	}
	return ops
}

// genFunction builds one function with the profile's structure. Calls
// target a uniformly drawn member of callees; pass nil for leaf
// functions.
func (s *synthesizer) genFunction(mod *program.Module, name string, callees []*program.Function) *program.Function {
	f := s.b.Function(mod, name)
	entry := s.b.Block(f, isa.PUSH, isa.MOV)
	open := entry // block whose terminator still needs wiring

	link := func(next *program.Block) {
		s.b.Fallthrough(open, next)
		open = next
	}

	for seg := 0; seg < s.prof.Segments; seg++ {
		r := s.rng.Float64()
		switch {
		case r < s.prof.DiamondFrac:
			// cond -> (skip | then) -> merge
			cond := s.b.Block(f, s.body(1)...)
			then := s.b.Block(f, s.body(1)...)
			merge := s.b.Block(f, s.body(1)...)
			link(cond)
			p := s.prof.TakenProbMin +
				s.rng.Float64()*(s.prof.TakenProbMax-s.prof.TakenProbMin)
			s.b.Cond(cond, s.pick.condBranch(), merge, then, p)
			s.b.Fallthrough(then, merge)
			open = merge
		case r < s.prof.DiamondFrac+s.prof.LoopFrac:
			head := s.b.Block(f, s.body(1)...)
			latch := s.b.Block(f, s.body(1)...)
			after := s.b.Block(f, s.body(1)...)
			link(head)
			s.b.Fallthrough(head, latch)
			trip := s.prof.InnerTripMin +
				s.rng.Intn(s.prof.InnerTripMax-s.prof.InnerTripMin+1)
			s.b.Loop(latch, s.pick.condBranch(), head, after, trip)
			open = after
		case r < s.prof.DiamondFrac+s.prof.LoopFrac+s.prof.CallFrac && len(callees) > 0:
			callBlk := s.b.Block(f, s.body(1)...)
			after := s.b.Block(f, s.body(1)...)
			link(callBlk)
			callee := callees[s.rng.Intn(len(callees))]
			s.b.Call(callBlk, callee, after)
			open = after
		default:
			link(s.b.Block(f, s.body(1)...))
		}
	}
	exit := s.b.Block(f, isa.POP)
	s.b.Fallthrough(open, exit)
	s.b.Return(exit)
	return f
}

// genMain builds a driver: entry -> outer loop over a call fan-out to
// the given functions -> exit. Each outer iteration calls every target
// once.
func (s *synthesizer) genMain(mod *program.Module, name string, targets []*program.Function, outerTrips int) *program.Function {
	f := s.b.Function(mod, name)
	entry := s.b.Block(f, isa.PUSH, isa.MOV)
	head := s.b.Block(f, isa.ADD)
	s.b.Fallthrough(entry, head)
	open := head
	for _, tgt := range targets {
		callBlk := s.b.Block(f, isa.MOV)
		after := s.b.Block(f, isa.MOV)
		s.b.Fallthrough(open, callBlk)
		s.b.Call(callBlk, tgt, after)
		open = after
	}
	latch := s.b.Block(f, isa.INC, isa.CMP)
	exit := s.b.Block(f, isa.POP)
	s.b.Fallthrough(open, latch)
	s.b.Loop(latch, isa.JLE, head, exit, outerTrips)
	s.b.Return(exit)
	return f
}

// SynthSpec describes a whole synthetic program.
type SynthSpec struct {
	Name       string
	Seed       int64
	Funcs      int     // helper function count
	Profile    Profile // per-function structure
	OuterTrips int     // main loop iterations per entry invocation
	// LeafFrac is the fraction of helpers that are leaves; the rest may
	// call leaves. Ignored when CallDepth layers the call graph.
	LeafFrac float64
	// PhaseMixes, when non-empty, cycles the instruction mix across
	// helper functions (function i draws from PhaseMixes[i mod len]),
	// overriding Profile.Mix — the phase-alternating family's
	// vectorized↔scalar phases. Empty leaves generation bit-identical
	// to the single-mix path.
	PhaseMixes []MixProfile
	// CallDepth, when >= 2, layers the helpers into a call chain that
	// deep: layer 0 functions are leaves, each higher layer calls the
	// one below, and the driver calls the top layer — the
	// callgraph-deep family. Zero keeps the historical two-level
	// leaves/uppers shape.
	CallDepth int
}

// Synthesize builds a program from a spec and returns it with its entry
// function.
func Synthesize(spec SynthSpec) (*program.Program, *program.Function) {
	b := program.NewBuilder(spec.Name)
	mod := b.Module(spec.Name, program.RingUser)
	s := newSynthesizer(b, spec.Seed, spec.Profile)

	if spec.Funcs < 1 {
		spec.Funcs = 1
	}
	if spec.OuterTrips < 1 {
		spec.OuterTrips = 1
	}
	// phase switches the picker onto function i's mix; a no-op unless
	// the spec declares phases.
	phase := func(i int) {
		if len(spec.PhaseMixes) > 0 {
			s.pick.setMix(spec.PhaseMixes[i%len(spec.PhaseMixes)])
		}
	}

	var targets []*program.Function
	if spec.CallDepth >= 2 {
		targets = genLayers(s, mod, spec, phase)
	} else {
		nLeaf := int(float64(spec.Funcs) * spec.LeafFrac)
		if nLeaf < 1 {
			nLeaf = 1
		}
		var leaves, uppers []*program.Function
		for i := 0; i < spec.Funcs; i++ {
			phase(i)
			if i < nLeaf {
				leaves = append(leaves, s.genFunction(mod, fnName(spec.Name, i), nil))
			} else {
				uppers = append(uppers, s.genFunction(mod, fnName(spec.Name, i), leaves))
			}
		}
		targets = uppers
		if len(targets) == 0 {
			targets = leaves
		}
	}
	main := s.genMain(mod, spec.Name+"_main", targets, spec.OuterTrips)
	return mustFinish(b, spec.Name), main
}

// genLayers builds the CallDepth-layered helper set: functions are
// assigned to layers bottom-up, every layer's calls target the layer
// below, and the returned top layer is the driver's fan-out set.
func genLayers(s *synthesizer, mod *program.Module, spec SynthSpec, phase func(int)) []*program.Function {
	depth := spec.CallDepth
	if depth > spec.Funcs {
		depth = spec.Funcs
	}
	perLayer := spec.Funcs / depth
	if perLayer < 1 {
		perLayer = 1
	}
	var below, top []*program.Function
	idx := 0
	for layer := 0; layer < depth; layer++ {
		count := perLayer
		if layer == depth-1 {
			count = spec.Funcs - idx // the top layer absorbs the remainder
		}
		var cur []*program.Function
		for j := 0; j < count && idx < spec.Funcs; j++ {
			phase(idx)
			cur = append(cur, s.genFunction(mod, fnName(spec.Name, idx), below))
			idx++
		}
		below, top = cur, cur
	}
	return top
}

func fnName(base string, i int) string {
	return fmt.Sprintf("%s_f%02d", base, i)
}
