package workloads

// This file freezes the pre-refactor hand-rolled workload constructors
// — the imperative code the declarative shape-spec registry replaced —
// and proves the registry compiles every pre-existing workload to a
// bit-identical program with identical execution metadata. The paper
// tables are pure functions of (program, repeat, class, scale, seed),
// so program-level identity here plus the harness golden-table test
// pins the whole pipeline to its pre-refactor output.

import (
	"testing"

	"hbbp/internal/collector"
	"hbbp/internal/cpu"
	"hbbp/internal/program"
)

// legacyCalibrate reproduces the old Workload.calibrateRepeat: dry-run
// one invocation, derive the repeat hitting the target volume.
func legacyCalibrate(t *testing.T, w *Workload, target uint64) {
	t.Helper()
	stats, err := cpu.Run(w.Prog, w.Entry, cpu.Config{Seed: 1, Repeat: 1})
	if err != nil {
		t.Fatalf("legacy %s dry run: %v", w.Name, err)
	}
	per := stats.Retired
	if per == 0 {
		w.Repeat = 1
		return
	}
	w.Repeat = int(target / per)
	if w.Repeat < 1 {
		w.Repeat = 1
	}
}

// legacyBuildSPEC is the pre-refactor buildSPEC, verbatim.
func legacyBuildSPEC(t *testing.T, i int, d specDef) *Workload {
	prog, entry := Synthesize(SynthSpec{
		Name:  d.name,
		Seed:  specSeed(i),
		Funcs: d.funcs,
		Profile: Profile{
			MeanBlockLen:   d.meanLen,
			BlockLenSpread: d.spread,
			Segments:       d.segments,
			DiamondFrac:    d.diamond,
			LoopFrac:       d.loop,
			CallFrac:       d.call,
			DivFrac:        d.div,
			InnerTripMin:   3,
			InnerTripMax:   12,
			Mix:            d.mix,
		},
		OuterTrips: 40,
		LeafFrac:   0.6,
	})
	w := &Workload{
		Name: d.name, Prog: prog, Entry: entry,
		Class: collector.ClassMinutes, Scale: specScale, SDEBug: d.sdeBug,
	}
	legacyCalibrate(t, w, d.targetInst)
	return w
}

// legacyTest40 is the pre-refactor Test40 constructor, verbatim.
func legacyTest40(t *testing.T) *Workload {
	prog, entry := Synthesize(SynthSpec{
		Name:  "test40",
		Seed:  0x6EA47,
		Funcs: 40,
		Profile: Profile{
			MeanBlockLen:   4,
			BlockLenSpread: 2,
			Segments:       5,
			DiamondFrac:    0.42,
			LoopFrac:       0.10,
			CallFrac:       0.30,
			DivFrac:        0.015,
			InnerTripMin:   2,
			InnerTripMax:   6,
			Mix:            MixProfile{Base: 0.82, SSEScalar: 0.16, X87: 0.02},
		},
		OuterTrips: 25,
		LeafFrac:   0.55,
	})
	w := &Workload{Name: "test40", Prog: prog, Entry: entry,
		Class: collector.ClassSeconds, Scale: 3000}
	legacyCalibrate(t, w, 5_000_000)
	return w
}

// legacyHydroPost is the pre-refactor HydroPost constructor, verbatim.
func legacyHydroPost(t *testing.T) *Workload {
	prog, entry := Synthesize(SynthSpec{
		Name:  "hydro-post",
		Seed:  0x44D120,
		Funcs: 24,
		Profile: Profile{
			MeanBlockLen:   1,
			BlockLenSpread: 1,
			Segments:       4,
			DiamondFrac:    0.40,
			LoopFrac:       0.04,
			CallFrac:       0.50,
			DivFrac:        0.002,
			InnerTripMin:   2,
			InnerTripMax:   4,
			Mix:            MixProfile{Base: 0.92, SSEScalar: 0.08},
		},
		OuterTrips: 30,
		LeafFrac:   0.5,
	})
	w := &Workload{Name: "hydro-post", Prog: prog, Entry: entry,
		Class: collector.ClassMinuteOrTwo, Scale: 10_000}
	legacyCalibrate(t, w, 4_000_000)
	return w
}

// legacyTrainingCorpus is the pre-refactor TrainingCorpus, rebuilt
// from the same frozen sweep (hot loops first, then the structural
// sweep, exactly the old ordering and seeds).
func legacyTrainingCorpus(t *testing.T) []*Workload {
	out := make([]*Workload, 0, len(hotLoopSeeds)+len(trainingDefs))
	for i, seed := range hotLoopSeeds {
		name := "trainloop0" + string(rune('1'+i))
		prog, entry := Synthesize(SynthSpec{
			Name:  name,
			Seed:  seed,
			Funcs: 2,
			Profile: Profile{
				MeanBlockLen:   4,
				BlockLenSpread: 2,
				Segments:       3,
				DiamondFrac:    0.2,
				LoopFrac:       0.6,
				CallFrac:       0.0,
				DivFrac:        0.02,
				InnerTripMin:   8,
				InnerTripMax:   30,
				Mix:            MixProfile{Base: 0.8, SSEScalar: 0.2},
			},
			OuterTrips: 60,
			LeafFrac:   1,
		})
		w := &Workload{Name: name, Prog: prog, Entry: entry,
			Class: collector.ClassSeconds, Scale: 1000}
		legacyCalibrate(t, w, 1_200_000)
		out = append(out, w)
	}
	for i, s := range trainingDefs {
		name := "train" + string(rune('0'+(i+1)/10)) + string(rune('0'+(i+1)%10))
		prog, entry := Synthesize(SynthSpec{
			Name:  name,
			Seed:  0x7EA1 + int64(i)*6151,
			Funcs: s.funcs,
			Profile: Profile{
				MeanBlockLen:   s.meanLen,
				BlockLenSpread: s.spread,
				Segments:       7,
				DiamondFrac:    s.diamond,
				LoopFrac:       s.loop,
				CallFrac:       s.call,
				DivFrac:        s.div,
				InnerTripMin:   3,
				InnerTripMax:   10,
				Mix:            s.mix,
			},
			OuterTrips: 30,
			LeafFrac:   0.6,
		})
		w := &Workload{Name: name, Prog: prog, Entry: entry,
			Class: collector.ClassSeconds, Scale: 1000}
		legacyCalibrate(t, w, 2_500_000)
		out = append(out, w)
	}
	return out
}

// legacyFitter reproduces the pre-refactor Fitter constructor: the
// (unchanged) program builder plus the fixed 60-repeat metadata.
func legacyFitter(v FitterVariant) *Workload {
	prog, entry := fitterProgram(v)
	return &Workload{Name: v.WorkloadName(), Prog: prog, Entry: entry,
		Repeat: 60, Class: collector.ClassSeconds, Scale: 2000}
}

// legacyCLForward reproduces the pre-refactor CLForward constructor,
// including the package-cache semantics: the fixed build runs exactly
// as many invocations as the pre-fix build's calibration produced.
func legacyCLForward(t *testing.T, fixed bool) *Workload {
	name := "clforward-before"
	if fixed {
		name = "clforward-after"
	}
	prog, entry := clforwardProgram(fixed)
	w := &Workload{Name: name, Prog: prog, Entry: entry,
		Class: collector.ClassMinuteOrTwo, Scale: 20_000}
	if fixed {
		w.Repeat = legacyCLForward(t, false).Repeat
	} else {
		legacyCalibrate(t, w, 2_500_000)
	}
	return w
}

// legacyKernelPrime reproduces the pre-refactor KernelPrime.
func legacyKernelPrime(t *testing.T) *Workload {
	prog, entry := kernelPrimeProgram()
	w := &Workload{Name: "kernel-prime", Prog: prog, Entry: entry,
		Class: collector.ClassSeconds, Scale: 1000}
	legacyCalibrate(t, w, 3_000_000)
	return w
}

// ---------------------------------------------------------------------

// termEqual compares two terminators structurally (targets by address,
// callees by name).
func termEqual(a, b program.Terminator) bool {
	if a.Kind != b.Kind || a.Trip != b.Trip || a.Prob != b.Prob {
		return false
	}
	addr := func(blk *program.Block) uint64 {
		if blk == nil {
			return ^uint64(0)
		}
		return blk.Addr
	}
	if addr(a.Target) != addr(b.Target) || addr(a.Next) != addr(b.Next) {
		return false
	}
	if (a.Callee == nil) != (b.Callee == nil) {
		return false
	}
	if a.Callee != nil && a.Callee.Name != b.Callee.Name {
		return false
	}
	return true
}

// requireProgramsIdentical asserts two programs are bit-identical:
// same modules (name, ring, base, encoded bytes), same blocks (owner,
// address, opcodes, terminator, trace flag). The cosmetic top-level
// program name is excluded — the refactor normalised the fitter
// builds' to their registry keys.
func requireProgramsIdentical(t *testing.T, name string, got, want *program.Program) {
	t.Helper()
	if len(got.Modules) != len(want.Modules) {
		t.Fatalf("%s: %d modules, want %d", name, len(got.Modules), len(want.Modules))
	}
	for i, gm := range got.Modules {
		wm := want.Modules[i]
		if gm.Name != wm.Name || gm.Ring != wm.Ring || gm.Base != wm.Base {
			t.Fatalf("%s: module %d header differs: %s/%v/%#x vs %s/%v/%#x",
				name, i, gm.Name, gm.Ring, gm.Base, wm.Name, wm.Ring, wm.Base)
		}
		if string(gm.Code) != string(wm.Code) {
			t.Fatalf("%s: module %s code bytes differ", name, gm.Name)
		}
	}
	if got.NumBlocks() != want.NumBlocks() {
		t.Fatalf("%s: %d blocks, want %d", name, got.NumBlocks(), want.NumBlocks())
	}
	for id := 0; id < want.NumBlocks(); id++ {
		g, w := got.BlockByID(id), want.BlockByID(id)
		if g.Fn.Name != w.Fn.Name || g.Addr != w.Addr || g.TraceJump != w.TraceJump {
			t.Fatalf("%s: block %d differs: %s@%#x vs %s@%#x", name, id,
				g.Fn.Name, g.Addr, w.Fn.Name, w.Addr)
		}
		if len(g.Ops) != len(w.Ops) {
			t.Fatalf("%s: block %d has %d ops, want %d", name, id, len(g.Ops), len(w.Ops))
		}
		for j := range g.Ops {
			if g.Ops[j] != w.Ops[j] {
				t.Fatalf("%s: block %d op %d: %v vs %v", name, id, j, g.Ops[j], w.Ops[j])
			}
		}
		if !termEqual(g.Term, w.Term) {
			t.Fatalf("%s: block %d terminator differs", name, id)
		}
	}
}

// requireWorkloadsIdentical compares program plus execution metadata.
func requireWorkloadsIdentical(t *testing.T, got, want *Workload) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name %q, want %q", got.Name, want.Name)
	}
	if got.Repeat != want.Repeat || got.Class != want.Class ||
		got.Scale != want.Scale || got.SDEBug != want.SDEBug {
		t.Fatalf("%s metadata differs: repeat %d/%d class %v/%v scale %d/%d sdebug %v/%v",
			got.Name, got.Repeat, want.Repeat, got.Class, want.Class,
			got.Scale, want.Scale, got.SDEBug, want.SDEBug)
	}
	if got.Entry.Name != want.Entry.Name {
		t.Fatalf("%s: entry %q, want %q", got.Name, got.Entry.Name, want.Entry.Name)
	}
	requireProgramsIdentical(t, got.Name, got.Prog, want.Prog)
}

// TestRegistryParityWithLegacyConstructors proves every pre-existing
// workload compiled from its shape spec is bit-identical — program
// image, entry point, calibrated repeat, class, scale, flags — to the
// output of the frozen pre-refactor constructors above.
func TestRegistryParityWithLegacyConstructors(t *testing.T) {
	reg := Default()
	build := func(name string) *Workload {
		w, err := reg.Build(name)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		return w
	}

	for i, d := range specDefs {
		requireWorkloadsIdentical(t, build(d.name), legacyBuildSPEC(t, i, d))
	}
	requireWorkloadsIdentical(t, build("test40"), legacyTest40(t))
	requireWorkloadsIdentical(t, build("hydro-post"), legacyHydroPost(t))
	requireWorkloadsIdentical(t, build("kernel-prime"), legacyKernelPrime(t))
	requireWorkloadsIdentical(t, build("clforward-before"), legacyCLForward(t, false))
	requireWorkloadsIdentical(t, build("clforward-after"), legacyCLForward(t, true))
	for _, v := range FitterVariants() {
		requireWorkloadsIdentical(t, build(v.WorkloadName()), legacyFitter(v))
	}
	for i, want := range legacyTrainingCorpus(t) {
		name := TrainingNames()[i]
		if name != want.Name {
			t.Fatalf("training order: %s at %d, legacy had %s", name, i, want.Name)
		}
		requireWorkloadsIdentical(t, build(name), want)
	}
}
