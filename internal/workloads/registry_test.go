package workloads

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"hbbp/internal/collector"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

func TestRegistryEnumerationSortedAndDeterministic(t *testing.T) {
	reg := Default()
	names := reg.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	// 9 case studies + 29 SPEC + 4 scenario families + 16 training.
	if len(names) != 58 {
		t.Errorf("registry has %d entries, want 58", len(names))
	}
	again := reg.Names()
	for i := range names {
		if names[i] != again[i] {
			t.Fatalf("enumeration not deterministic: %v vs %v", names, again)
		}
	}
	specs := reg.Specs()
	if len(specs) != len(names) {
		t.Fatalf("Specs() has %d entries, Names() %d", len(specs), len(names))
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if s.Name != names[i] {
			t.Errorf("Specs()[%d] = %s, want %s (sorted alignment)", i, s.Name, names[i])
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{
		"test40", "hydro-post", "kernel-prime", "povray", "lbm",
		"pointer-chase", "phase-alternating", "megamorphic-branchy",
		"callgraph-deep", "trainloop01", "train10", "fitter-avxfix",
	} {
		if !seen[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

// TestLookupReturnsIsolatedCopies pins the aliasing contract: specs
// handed out by Lookup/Specs (and specs retained by callers after
// Register) share no mutable state with the registry, so mutating
// them cannot corrupt deterministic generation.
func TestLookupReturnsIsolatedCopies(t *testing.T) {
	reg := Default()
	before := build(t, "test40")
	s, ok := reg.Lookup("test40")
	if !ok || s.Synth == nil {
		t.Fatal("Lookup(test40) failed")
	}
	s.Synth.Seed = 0xBAD
	s.Synth.Profile.MeanBlockLen = 99
	after := build(t, "test40")
	requireProgramsIdentical(t, "test40", after.Prog, before.Prog)

	spec, _ := reg.Lookup("phase-alternating")
	if len(spec.Synth.PhaseMixes) == 0 {
		t.Fatal("phase-alternating lost its phases")
	}
	spec.Synth.PhaseMixes[0] = MixProfile{X87: 1}
	fresh, _ := reg.Lookup("phase-alternating")
	if fresh.Synth.PhaseMixes[0].X87 == 1 {
		t.Error("PhaseMixes mutation reached the registry")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := Default().Build("no-such-workload")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("Build(unknown) = %v, want ErrUnknown", err)
	}
	if _, ok := Default().Lookup("no-such-workload"); ok {
		t.Error("Lookup(unknown) reported ok")
	}
}

func TestRegisterValidation(t *testing.T) {
	reg := NewRegistry()
	synth := &SynthSpec{Name: "x", Seed: 1, Funcs: 1}
	cases := []struct {
		label string
		spec  ShapeSpec
	}{
		{"empty name", ShapeSpec{Scale: 1, Synth: synth, Repeat: 1}},
		{"no generator", ShapeSpec{Name: "a", Scale: 1, Repeat: 1}},
		{"two generators", ShapeSpec{Name: "a", Scale: 1, Repeat: 1, Synth: synth,
			Program: func() (*program.Program, *program.Function) { return nil, nil }}},
		{"no volume", ShapeSpec{Name: "a", Scale: 1, Synth: synth}},
		{"two volumes", ShapeSpec{Name: "a", Scale: 1, Synth: synth, Repeat: 1, TargetInst: 5}},
		{"no scale", ShapeSpec{Name: "a", Synth: synth, Repeat: 1}},
		{"dangling RepeatOf", ShapeSpec{Name: "a", Scale: 1, Synth: synth, RepeatOf: "ghost"}},
	}
	for _, c := range cases {
		if err := reg.Register(c.spec); err == nil {
			t.Errorf("%s: Register accepted a bad spec", c.label)
		}
	}
	good := ShapeSpec{Name: "a", Scale: 1, Synth: synth, Repeat: 1}
	if err := reg.Register(good); err != nil {
		t.Fatalf("Register(good): %v", err)
	}
	if err := reg.Register(good); err == nil {
		t.Error("duplicate registration accepted")
	}
}

// TestRegistryConcurrentBuilds proves the memoized calibration is safe
// under concurrent construction — the property that lets harness
// workers build workloads inside the pool. Run with -race.
func TestRegistryConcurrentBuilds(t *testing.T) {
	reg := NewRegistry()
	for _, spec := range builtinSpecs() {
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{
		"test40", "test40", "clforward-after", "clforward-after",
		"clforward-before", "kernel-prime", "povray", "povray",
		"pointer-chase", "callgraph-deep",
	}
	got := make([]*Workload, len(names))
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := reg.Build(names[i])
			if err != nil {
				t.Errorf("Build(%s): %v", names[i], err)
				return
			}
			got[i] = w
		}()
	}
	wg.Wait()
	want := map[string]int{}
	for i, w := range got {
		if w == nil {
			continue
		}
		if prev, ok := want[names[i]]; ok && prev != w.Repeat {
			t.Errorf("%s: repeat %d vs %d across concurrent builds", names[i], w.Repeat, prev)
		}
		want[names[i]] = w.Repeat
	}
	// The calibration-by-reference chain resolves under concurrency.
	if want["clforward-before"] != want["clforward-after"] {
		t.Errorf("clforward repeats diverged: before %d, after %d",
			want["clforward-before"], want["clforward-after"])
	}
}

func TestBuildSpecCustomWorkload(t *testing.T) {
	custom := ShapeSpec{
		Name:        "custom-test",
		Description: "caller-authored spec",
		Class:       collector.ClassSeconds,
		Scale:       100,
		TargetInst:  50_000,
		Synth: &SynthSpec{
			Name: "custom-test", Seed: 7, Funcs: 3,
			Profile:    Profile{MeanBlockLen: 5, DiamondFrac: 0.3, LoopFrac: 0.2},
			OuterTrips: 5, LeafFrac: 1,
		},
	}
	w, err := Default().BuildSpec(custom)
	if err != nil {
		t.Fatalf("BuildSpec: %v", err)
	}
	if w.Repeat < 1 || w.Prog == nil || w.Entry == nil {
		t.Fatalf("custom workload incomplete: %+v", w)
	}
	// Custom specs may calibrate against registered entries.
	ref := custom
	ref.TargetInst = 0
	ref.RepeatOf = "clforward-before"
	w2, err := Default().BuildSpec(ref)
	if err != nil {
		t.Fatalf("BuildSpec(RepeatOf): %v", err)
	}
	before := build(t, "clforward-before")
	if w2.Repeat != before.Repeat {
		t.Errorf("RepeatOf repeat %d, want %d", w2.Repeat, before.Repeat)
	}
	// Unregistered specs never pollute the registry.
	if _, ok := Default().Lookup("custom-test"); ok {
		t.Error("BuildSpec registered the spec")
	}
	// Invalid custom specs are rejected with an error, not a panic.
	bad := custom
	bad.Synth = nil
	if _, err := Default().BuildSpec(bad); err == nil {
		t.Error("BuildSpec accepted a generator-less spec")
	}
}

func TestScaledEdgeCases(t *testing.T) {
	w := build(t, "test40")

	// Factor exactly 1 is the identity.
	same := w.Scaled(1)
	if same.Repeat != w.Repeat {
		t.Errorf("Scaled(1): repeat %d, want %d", same.Repeat, w.Repeat)
	}
	if same == w {
		t.Error("Scaled must return a copy")
	}

	// Ordinary scaling halves the repeat.
	half := w.Scaled(0.5)
	if half.Repeat != w.Repeat/2 {
		t.Errorf("Scaled(0.5): repeat %d, want %d", half.Repeat, w.Repeat/2)
	}

	// Tiny factors floor at 1 instead of rounding to 0.
	tiny := w.Scaled(0.5 / float64(w.Repeat))
	if tiny.Repeat != 1 {
		t.Errorf("tiny factor: repeat %d, want the 1 floor", tiny.Repeat)
	}
	one := &Workload{Name: "one", Prog: w.Prog, Entry: w.Entry, Repeat: 1}
	if got := one.Scaled(0.25).Repeat; got != 1 {
		t.Errorf("Repeat 1 scaled: %d, want 1", got)
	}

	// Out-of-range factors are caller bugs and still panic.
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled(%g) should panic", bad)
				}
			}()
			w.Scaled(bad)
		}()
	}
}

// TestInstructionsPerRunError pins the error path: a workload whose
// dry run cannot complete reports ErrBuild instead of panicking.
func TestInstructionsPerRunError(t *testing.T) {
	w := build(t, "test40")
	if _, err := w.InstructionsPerRun(); err != nil {
		t.Fatalf("healthy workload: %v", err)
	}
	// A runaway workload trips the cpu retirement guard; the error is
	// classified, not thrown.
	b := program.NewBuilder("runaway")
	mod := b.Module("runaway", program.RingUser)
	f := b.Function(mod, "spin")
	head := b.Block(f, isa.ADD)
	latch := b.Block(f, isa.INC, isa.CMP)
	exit := b.Block(f, isa.POP)
	b.Fallthrough(head, latch)
	b.Loop(latch, isa.JNZ, head, exit, 1<<40) // far beyond MaxRetired
	b.Return(exit)
	prog := mustFinish(b, "runaway")
	runaway := &Workload{Name: "runaway", Prog: prog, Entry: f}
	if _, err := runaway.InstructionsPerRun(); !errors.Is(err, ErrBuild) {
		t.Fatalf("runaway dry run = %v, want ErrBuild", err)
	}
}

func TestBuildSharesSnapshotImage(t *testing.T) {
	reg := NewRegistry()
	for _, spec := range builtinSpecs() {
		if err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	a, err := reg.Build("test40")
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Build("test40")
	if err != nil {
		t.Fatal(err)
	}
	// Repeated builds are O(1) checkouts of one snapshot: the program
	// image and every derived table are the same objects, not
	// recompilations.
	if a.Prog != b.Prog {
		t.Error("repeated builds compiled separate program images")
	}
	if a.Image == nil || a.Image != b.Image {
		t.Error("repeated builds do not share the snapshot")
	}
	if a.Layout == nil || a.Layout != b.Layout {
		t.Error("repeated builds do not share the execution layout")
	}
	if a.SDE == nil || a.SDE != b.SDE {
		t.Error("repeated builds do not share the instrumentation profile")
	}
	if a.Image.Program() != a.Prog {
		t.Error("workload program is not the snapshot's image")
	}
	if a.Layout.Program() != a.Prog {
		t.Error("layout derived from a different program")
	}
	if a.SDE.Program() != a.Prog {
		t.Error("instrumentation profile derived from a different program")
	}
	// Scaling copies the struct, so the shared tables ride along and
	// stay consistent with the (unchanged) program.
	s := a.Scaled(0.5)
	if s.Prog != a.Prog || s.Layout != a.Layout {
		t.Error("Scaled dropped the shared image or layout")
	}
}
