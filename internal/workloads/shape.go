package workloads

import (
	"fmt"

	"hbbp/internal/collector"
	"hbbp/internal/program"
)

// ShapeSpec declaratively describes one workload purely by *shape* —
// the only thing the paper's evaluation depends on. A spec is plain
// data: the block-length distribution, branch/call/taken densities and
// ISA-class mix live in Synth (compiled by the generic generator), the
// sampling class and retirement scaling are fields, and the execution
// volume is one of three calibration policies. The handful of case
// studies whose control-flow graphs the paper describes structurally
// (Fitter, CLForward, kernel-prime) keep a bespoke Program builder but
// share every other field.
//
// Specs are registered in a [Registry], which compiles them to
// [Workload]s on demand and owns calibration.
type ShapeSpec struct {
	// Name is the registry key and the built workload's name.
	Name string
	// Description summarises what the workload models.
	Description string
	// Class selects the Table 4 sampling periods.
	Class collector.RuntimeClass
	// Scale maps simulated retirements to real ones.
	Scale uint64
	// SDEBug marks workloads the reference tool miscounts (the paper's
	// x264ref footnote); they are excluded from error aggregation.
	SDEBug bool

	// Synth, when non-nil, compiles the program with the generic
	// structured generator. Exactly one of Synth and Program must be
	// set.
	Synth *SynthSpec
	// Program, when non-nil, builds a bespoke control-flow graph (the
	// case studies whose structure the paper spells out).
	Program func() (*program.Program, *program.Function)

	// Execution volume — exactly one of the three:
	//
	// TargetInst calibrates Repeat so one full run retires about this
	// many simulated instructions (a memoized dry run, owned by the
	// registry).
	TargetInst uint64
	// Repeat fixes the invocation count directly (no dry run).
	Repeat int
	// RepeatOf copies another registered spec's calibrated Repeat —
	// e.g. clforward-after runs as many kernel invocations as the
	// pre-fix build it is compared against.
	RepeatOf string
}

// validate reports structural errors in a spec before registration.
func (s *ShapeSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("workloads: spec with empty name")
	}
	if (s.Synth == nil) == (s.Program == nil) {
		return fmt.Errorf("workloads: spec %s must set exactly one of Synth and Program", s.Name)
	}
	n := 0
	if s.TargetInst > 0 {
		n++
	}
	if s.Repeat > 0 {
		n++
	}
	if s.RepeatOf != "" {
		n++
	}
	if n != 1 {
		return fmt.Errorf("workloads: spec %s must set exactly one of TargetInst, Repeat and RepeatOf", s.Name)
	}
	if s.Scale == 0 {
		return fmt.Errorf("workloads: spec %s has no retirement scale", s.Name)
	}
	return nil
}

// compile builds the spec's program image. Construction is
// deterministic — every call returns a structurally identical fresh
// program — and safe to run concurrently with other compilations.
func (s *ShapeSpec) compile() (*program.Program, *program.Function) {
	if s.Synth != nil {
		return Synthesize(*s.Synth)
	}
	return s.Program()
}

// clone returns a deep copy: the Synth spec and its PhaseMixes slice
// are duplicated, so a caller mutating the copy (or the spec they
// registered) never reaches registry state through shared pointers.
func (s ShapeSpec) clone() ShapeSpec {
	out := s
	if s.Synth != nil {
		synth := *s.Synth
		synth.PhaseMixes = append([]MixProfile(nil), s.Synth.PhaseMixes...)
		out.Synth = &synth
	}
	return out
}
