package workloads

import (
	"fmt"

	"hbbp/internal/collector"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// FitterVariant selects one of the builds of the Fitter track-fitting
// benchmark (Section VIII.C, Tables 3 and 6).
type FitterVariant uint8

// Fitter variants.
const (
	// FitterX87 is the scalar build: the bulk of the math is scalar
	// SSE (the compiler's scalar FP path) with a legacy x87 remainder.
	FitterX87 FitterVariant = iota
	// FitterSSE vectorizes with 128-bit packed SSE (4 lanes): about a
	// quarter of the scalar instruction volume.
	FitterSSE
	// FitterAVX vectorizes with 256-bit AVX (8 lanes) — but this is
	// the broken compiler build of Table 6: the inner kernels are not
	// inlined, so every measurement update pays calls plus x87 spill
	// code around them (the 20x regression the paper diagnosed).
	FitterAVX
	// FitterAVXFix is the corrected AVX build with inlining restored.
	FitterAVXFix
)

// String names the variant as in Table 6's columns.
func (v FitterVariant) String() string {
	switch v {
	case FitterX87:
		return "x87"
	case FitterSSE:
		return "SSE"
	case FitterAVX:
		return "AVX"
	case FitterAVXFix:
		return "AVX fix"
	}
	return fmt.Sprintf("FitterVariant(%d)", uint8(v))
}

// WorkloadName returns the registry name of the variant's build
// ("fitter-x87", "fitter-sse", "fitter-avx", "fitter-avxfix").
func (v FitterVariant) WorkloadName() string {
	switch v {
	case FitterX87:
		return "fitter-x87"
	case FitterSSE:
		return "fitter-sse"
	case FitterAVX:
		return "fitter-avx"
	case FitterAVXFix:
		return "fitter-avxfix"
	}
	return fmt.Sprintf("fitter-variant-%d", uint8(v))
}

// fitterSpec declares one build of the track-fitting benchmark. The
// invocation count is the paper's fixed 60 runs — no calibration dry
// run is needed.
func fitterSpec(variant FitterVariant) ShapeSpec {
	return ShapeSpec{
		Name:        variant.WorkloadName(),
		Description: "track-fitting kernel, " + variant.String() + " build (Tables 3 and 6)",
		Class:       collector.ClassSeconds,
		Scale:       2000,
		Repeat:      60,
		Program:     func() (*program.Program, *program.Function) { return fitterProgram(variant) },
	}
}

// fitterEntryPad aligns fit_track; see Fitter.
const fitterEntryPad = 6

// fitterTracks is how many tracks one entry invocation fits.
const fitterTracks = 400

// fitterProgram builds the requested variant's image. The program fits
// sparse position measurements into tracks: per track, an inner loop
// over measurements performs the vectorizable math; a finalisation
// step runs a division and a square root. Lane widths shrink the
// packed instruction volume by 4x (SSE) and 8x (AVX) relative to the
// scalar build, reproducing the Expected half of Table 6.
func fitterProgram(variant FitterVariant) (*program.Program, *program.Function) {
	b := program.NewBuilder(variant.WorkloadName())
	mod := b.Module("fitter", program.RingUser)

	// Non-inlined kernels for the broken AVX build: each carries x87
	// spill code around a tiny AVX core.
	var spillKernels []*program.Function
	if variant == FitterAVX {
		for i := 0; i < 3; i++ {
			k := b.Function(mod, fmt.Sprintf("kernel_spill_%d", i))
			blk := b.Block(k,
				isa.PUSH, isa.FLD, isa.FLD, isa.FSTP, // spill incoming state
				isa.MOV, isa.MOV,
				isa.FLD, isa.FSTP, isa.FSTP, // restore
				isa.POP,
			)
			b.Return(blk)
			spillKernels = append(spillKernels, k)
		}
	}

	fit := b.Function(mod, "fit_track")
	entryOps := []isa.Op{isa.PUSH, isa.MOV, isa.MOV}
	// Alignment padding: keeps the hot fit loop's branches off
	// bias-prone addresses, matching the benign measurements the
	// paper reports for this workload (Table 6's measured half).
	for i := 0; i < fitterEntryPad; i++ {
		entryOps = append(entryOps, isa.NOP)
	}
	entry := b.Block(fit, entryOps...)

	// Measurement loop: load, outlier check, compute, accumulate.
	const measurements = 6
	load := b.Block(fit, isa.MOV, isa.MOVSXD, isa.ADD, isa.MOVSS, isa.CMP)
	outlier := b.Block(fit, isa.SUB, isa.MOV) // outlier handling path
	compute := b.Block(fit, computeOps(variant)...)

	b.Fallthrough(entry, load)
	b.Cond(load, isa.JNZ, compute, outlier, 0.88) // 12% of measurements are outliers
	b.Fallthrough(outlier, compute)

	// In the broken AVX build the three kernel invocations follow the
	// (reduced) inline core; each pair of blocks is created in layout
	// order so fallthroughs stay address-adjacent.
	open := compute
	for i := range spillKernels {
		callBlk := b.Block(fit, isa.MOV, isa.MOV)
		after := b.Block(fit, isa.MOV)
		b.Fallthrough(open, callBlk)
		b.Call(callBlk, spillKernels[i], after)
		open = after
	}

	acc := b.Block(fit, isa.ADDSS, isa.MOV, isa.ADD)
	latch := b.Block(fit, isa.INC, isa.CMP)
	b.Fallthrough(open, acc)
	b.Fallthrough(acc, latch)

	// Finalisation: covariance division, chi2 square root, rare refit.
	final := b.Block(fit, finalOps(variant)...)
	rare := b.Block(fit, isa.MOV, isa.SUB)
	exit := b.Block(fit, isa.MOV, isa.POP)
	b.Loop(latch, isa.JLE, load, final, measurements)
	b.Cond(final, isa.JZ, exit, rare, 0.93)
	b.Fallthrough(rare, exit)
	b.Return(exit)

	main := b.Function(mod, "main")
	mentry := b.Block(main, isa.PUSH, isa.MOV)
	head := b.Block(main, isa.MOV, isa.ADD)
	after := b.Block(main, isa.MOV)
	mlatch := b.Block(main, isa.INC, isa.CMP)
	mexit := b.Block(main, isa.POP)
	b.Fallthrough(mentry, head)
	b.Call(head, fit, after)
	b.Fallthrough(after, mlatch)
	b.Loop(mlatch, isa.JNZ, head, mexit, fitterTracks)
	b.Return(mexit)

	return mustFinish(b, "fitter"), main
}

// computeOps returns the per-measurement math for a variant. The scalar
// build runs 24 scalar FP operations; SSE packs them 4 wide; AVX packs
// 8 wide. The broken AVX build still emits the small AVX core here —
// its damage is the spill kernels called around it.
func computeOps(v FitterVariant) []isa.Op {
	switch v {
	case FitterX87:
		ops := []isa.Op{isa.FLD} // legacy residue
		for i := 0; i < 8; i++ {
			ops = append(ops, isa.MOVSS, isa.MULSS, isa.ADDSS)
		}
		return append(ops, isa.FSTP)
	case FitterSSE:
		return []isa.Op{
			isa.MOVAPS, isa.MULPS, isa.ADDPS,
			isa.MOVAPS, isa.MULPS, isa.ADDPS,
			isa.SHUFPS,
		}
	default: // both AVX builds
		return []isa.Op{isa.VMOVAPS, isa.VFMADD231PS, isa.VMULPS, isa.VADDPS}
	}
}

// finalOps returns the per-track finalisation (division + square root).
func finalOps(v FitterVariant) []isa.Op {
	switch v {
	case FitterX87:
		return []isa.Op{isa.FLD, isa.FDIV, isa.FSQRT, isa.FSTP, isa.MOV, isa.CMP}
	case FitterSSE:
		return []isa.Op{isa.MOVSS, isa.DIVSS, isa.SQRTSS, isa.MOV, isa.CMP}
	default:
		return []isa.Op{isa.VMOVSS, isa.VDIVSS, isa.SQRTSS, isa.MOV, isa.CMP}
	}
}

// FitterVariants lists all builds in Table 6 column order.
func FitterVariants() []FitterVariant {
	return []FitterVariant{FitterX87, FitterSSE, FitterAVX, FitterAVXFix}
}
