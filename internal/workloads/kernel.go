package workloads

import (
	"hbbp/internal/collector"
	"hbbp/internal/isa"
	"hbbp/internal/program"
)

// kernelEntryPad aligns hello_k; see buildPrimeSearch.
const kernelEntryPad = 1

// kernelPrimeSpec declares the synthetic kernel benchmark of Section
// VIII.D: a small prime-number trial-division search that exists twice
// in the same program — once as a user-space function (hello_u,
// visible to both SDE and HBBP) and once inside a kernel module
// (hello_k, visible only to HBBP), triggered from user space through a
// syscall. Calls to the kernel are separated in time by user-side
// filler, as in the paper. The kernel copy additionally carries trace
// points (patched JMP/NOP sites), exercising the self-modifying-kernel
// handling of Section III.C.
//
// Both copies use the instruction vocabulary of Table 7: ADD, CDQE,
// CMP, IMUL, JLE, JNLE, JNZ, JZ, MOV, MOVSXD, SUB, TEST.
func kernelPrimeSpec() ShapeSpec {
	return ShapeSpec{
		Name:        "kernel-prime",
		Description: "prime search in user space and as a kernel module (Table 7)",
		Class:       collector.ClassSeconds,
		Scale:       1000,
		TargetInst:  3_000_000,
		Program:     kernelPrimeProgram,
	}
}

// kernelPrimeProgram builds the two-copy prime-search image.
func kernelPrimeProgram() (*program.Program, *program.Function) {
	b := program.NewBuilder("kernel-prime")
	umod := b.Module("hello", program.RingUser)
	kmod := b.Module("hello.ko", program.RingKernel)

	helloU := buildPrimeSearch(b, umod, "hello_u", false)
	helloK := buildPrimeSearch(b, kmod, "hello_k", true)

	main := b.Function(umod, "main")
	entry := b.Block(main, isa.PUSH, isa.MOV)
	head := b.Block(main, isa.MOV)
	afterU := b.Block(main, isa.MOV)
	// User-side separation between kernel triggers, as in the paper
	// ("calls to kernel code are separated in time").
	fillHead := b.Block(main, isa.ADD, isa.MOV)
	fillLatch := b.Block(main, isa.SUB, isa.CMP)
	sysBlk := b.Block(main, isa.MOV)
	afterK := b.Block(main, isa.MOV)
	latch := b.Block(main, isa.ADD, isa.CMP)
	exit := b.Block(main, isa.POP)

	b.Fallthrough(entry, head)
	b.Call(head, helloU, afterU)
	b.Fallthrough(afterU, fillHead)
	b.Fallthrough(fillHead, fillLatch)
	b.Loop(fillLatch, isa.JNZ, fillHead, sysBlk, 12)
	b.Call(sysBlk, helloK, afterK)
	b.Fallthrough(afterK, latch)
	b.Loop(latch, isa.JLE, head, exit, 50)
	b.Return(exit)

	return mustFinish(b, "kernel-prime"), main
}

// buildPrimeSearch emits the trial-division prime counter. The block
// structure mirrors a compiled C loop nest:
//
//	for cand in candidates:        (outer loop)
//	    limit = cand*cand (IMUL/CDQE once per candidate)
//	    for d in divisors:         (divisor loop)
//	        r = cand mod d         (mod loop: repeated subtraction)
//	        if r == 0: composite   (diamond)
//	    count += is_prime          (tail diamond)
func buildPrimeSearch(b *program.Builder, mod *program.Module, name string, traced bool) *program.Function {
	f := b.Function(mod, name)
	entryOps := []isa.Op{isa.MOV, isa.MOV}
	if traced {
		// Alignment padding (compilers routinely pad kernel entry
		// points); the chosen count also keeps the module's hot
		// branches off bias-prone addresses, matching the benign
		// hardware behaviour the paper observed on this workload.
		for i := 0; i < kernelEntryPad; i++ {
			entryOps = append(entryOps, isa.NOP)
		}
	}
	entry := b.Block(f, entryOps...)

	candHead := b.Block(f, isa.MOV, isa.CDQE, isa.IMUL, isa.CMP)

	divHead := b.Block(f, isa.MOVSXD, isa.MOV, isa.CMP)
	modHead := b.Block(f, isa.ADD, isa.ADD, isa.MOV, isa.ADD)
	modLatch := b.Block(f, isa.ADD, isa.SUB, isa.CMP)
	check := b.Block(f, isa.MOV, isa.TEST)
	composite := b.Block(f, isa.ADD, isa.MOV)
	divLatch := b.Block(f, isa.ADD, isa.CMP)

	tail := b.Block(f, isa.MOV, isa.TEST)
	notPrime := b.Block(f, isa.ADD)
	var tracePre, tracePost *program.Block
	if traced {
		// Kernel builds carry a trace point between the per-candidate
		// tail and the outer latch.
		tracePre = b.Block(f, isa.MOV)
		tracePost = b.Block(f, isa.ADD)
	}
	candLatch := b.Block(f, isa.ADD, isa.CMP)
	exit := b.Block(f, isa.MOV)

	b.Fallthrough(entry, candHead)
	b.Fallthrough(candHead, divHead)
	b.Fallthrough(divHead, modHead)
	b.Fallthrough(modHead, modLatch)
	b.Loop(modLatch, isa.JNZ, modHead, check, 3)
	b.Cond(check, isa.JZ, divLatch, composite, 0.6) // 40% hit the composite path
	b.Fallthrough(composite, divLatch)
	b.Loop(divLatch, isa.JLE, divHead, tail, 4)
	b.Cond(tail, isa.JNLE, candLatch, notPrime, 0.55)
	if traced {
		b.Fallthrough(notPrime, tracePre)
		b.TracePoint(tracePre, tracePost)
		b.Fallthrough(tracePost, candLatch)
	} else {
		b.Fallthrough(notPrime, candLatch)
	}
	b.Loop(candLatch, isa.JNZ, candHead, exit, 25)
	b.Return(exit)
	return f
}
