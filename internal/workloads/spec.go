package workloads

import "hbbp/internal/collector"

// specDef is the curated shape of one SPEC CPU2006-like benchmark. The
// parameters are chosen so the suite reproduces the structural spread
// the paper's Figure 2 and Table 1 rely on: integer benchmarks with
// short blocks and dense branching, floating-point benchmarks with
// longer numeric blocks, and the named extremes (povray's tiny-block
// ray-tracing kernels, lbm's long streaming blocks, hmmer's
// long-latency-dense inner loops).
type specDef struct {
	name       string
	fp         bool // floating-point half of the suite
	meanLen    int
	spread     int
	funcs      int
	segments   int
	diamond    float64
	loop       float64
	call       float64
	div        float64
	mix        MixProfile
	targetInst uint64 // simulated retirements per full run
	sdeBug     bool
}

// specDefs lists the full 29-benchmark suite of SPEC CPU2006.
var specDefs = []specDef{
	// --- CINT2006 ---
	{name: "perlbench", meanLen: 5, spread: 3, funcs: 14, segments: 7, diamond: 0.40, loop: 0.12, call: 0.25, div: 0.01, mix: MixProfile{Base: 1}, targetInst: 4_000_000},
	{name: "bzip2", meanLen: 9, spread: 5, funcs: 6, segments: 8, diamond: 0.30, loop: 0.30, call: 0.08, div: 0.005, mix: MixProfile{Base: 1}, targetInst: 4_000_000},
	{name: "gcc", meanLen: 5, spread: 3, funcs: 18, segments: 7, diamond: 0.45, loop: 0.10, call: 0.25, div: 0.01, mix: MixProfile{Base: 1}, targetInst: 4_000_000},
	{name: "mcf", meanLen: 7, spread: 4, funcs: 5, segments: 7, diamond: 0.35, loop: 0.25, call: 0.10, div: 0.005, mix: MixProfile{Base: 1}, targetInst: 3_500_000},
	{name: "gobmk", meanLen: 5, spread: 3, funcs: 16, segments: 7, diamond: 0.42, loop: 0.12, call: 0.24, div: 0.008, mix: MixProfile{Base: 1}, targetInst: 4_000_000},
	{name: "hmmer", meanLen: 6, spread: 3, funcs: 5, segments: 9, diamond: 0.22, loop: 0.38, call: 0.06, div: 0.10, mix: MixProfile{Base: 0.9, SSEScalar: 0.1}, targetInst: 4_500_000},
	{name: "sjeng", meanLen: 5, spread: 3, funcs: 12, segments: 7, diamond: 0.45, loop: 0.12, call: 0.22, div: 0.006, mix: MixProfile{Base: 1}, targetInst: 4_000_000},
	{name: "libquantum", meanLen: 11, spread: 5, funcs: 4, segments: 7, diamond: 0.18, loop: 0.42, call: 0.05, div: 0.004, mix: MixProfile{Base: 0.9, IntSIMD: 0.1}, targetInst: 3_500_000},
	{name: "h264ref", meanLen: 8, spread: 5, funcs: 10, segments: 8, diamond: 0.30, loop: 0.25, call: 0.15, div: 0.01, mix: MixProfile{Base: 0.85, IntSIMD: 0.15}, targetInst: 4_500_000, sdeBug: true},
	{name: "omnetpp", meanLen: 7, spread: 3, funcs: 18, segments: 6, diamond: 0.38, loop: 0.14, call: 0.12, div: 0.004, mix: MixProfile{Base: 1}, targetInst: 3_500_000},
	{name: "astar", meanLen: 6, spread: 3, funcs: 7, segments: 7, diamond: 0.38, loop: 0.22, call: 0.12, div: 0.01, mix: MixProfile{Base: 0.95, SSEScalar: 0.05}, targetInst: 3_500_000},
	{name: "xalancbmk", meanLen: 6, spread: 3, funcs: 20, segments: 6, diamond: 0.42, loop: 0.12, call: 0.16, div: 0.004, mix: MixProfile{Base: 1}, targetInst: 4_000_000},
	// --- CFP2006 ---
	{name: "bwaves", meanLen: 22, spread: 9, funcs: 4, segments: 8, diamond: 0.10, loop: 0.45, call: 0.04, div: 0.02, mix: MixProfile{Base: 0.4, SSEPacked: 0.5, SSEScalar: 0.1}, targetInst: 5_000_000},
	{name: "gamess", meanLen: 7, spread: 4, funcs: 12, segments: 8, diamond: 0.32, loop: 0.22, call: 0.18, div: 0.03, mix: MixProfile{Base: 0.55, SSEScalar: 0.35, SSEPacked: 0.1}, targetInst: 4_500_000},
	{name: "milc", meanLen: 16, spread: 7, funcs: 5, segments: 8, diamond: 0.14, loop: 0.40, call: 0.06, div: 0.015, mix: MixProfile{Base: 0.45, SSEPacked: 0.45, SSEScalar: 0.1}, targetInst: 4_500_000},
	{name: "zeusmp", meanLen: 19, spread: 8, funcs: 4, segments: 8, diamond: 0.12, loop: 0.42, call: 0.04, div: 0.02, mix: MixProfile{Base: 0.45, SSEPacked: 0.45, SSEScalar: 0.1}, targetInst: 4_500_000},
	{name: "gromacs", meanLen: 14, spread: 6, funcs: 6, segments: 8, diamond: 0.18, loop: 0.36, call: 0.08, div: 0.04, mix: MixProfile{Base: 0.5, SSEPacked: 0.35, SSEScalar: 0.15}, targetInst: 4_500_000},
	{name: "cactusADM", meanLen: 24, spread: 10, funcs: 3, segments: 8, diamond: 0.08, loop: 0.46, call: 0.03, div: 0.02, mix: MixProfile{Base: 0.4, SSEPacked: 0.5, SSEScalar: 0.1}, targetInst: 5_000_000},
	{name: "leslie3d", meanLen: 20, spread: 8, funcs: 4, segments: 8, diamond: 0.10, loop: 0.44, call: 0.04, div: 0.02, mix: MixProfile{Base: 0.45, SSEPacked: 0.45, SSEScalar: 0.1}, targetInst: 4_500_000},
	{name: "namd", meanLen: 15, spread: 6, funcs: 6, segments: 8, diamond: 0.16, loop: 0.38, call: 0.07, div: 0.03, mix: MixProfile{Base: 0.5, SSEPacked: 0.35, SSEScalar: 0.15}, targetInst: 4_500_000},
	{name: "dealII", meanLen: 7, spread: 4, funcs: 12, segments: 7, diamond: 0.32, loop: 0.20, call: 0.20, div: 0.015, mix: MixProfile{Base: 0.6, SSEScalar: 0.3, SSEPacked: 0.1}, targetInst: 4_000_000},
	{name: "soplex", meanLen: 8, spread: 4, funcs: 9, segments: 7, diamond: 0.30, loop: 0.24, call: 0.14, div: 0.02, mix: MixProfile{Base: 0.65, SSEScalar: 0.3, SSEPacked: 0.05}, targetInst: 4_000_000},
	{name: "povray", meanLen: 2, spread: 1, funcs: 20, segments: 6, diamond: 0.36, loop: 0.06, call: 0.46, div: 0.02, mix: MixProfile{Base: 0.7, SSEScalar: 0.3}, targetInst: 3_500_000},
	{name: "calculix", meanLen: 13, spread: 6, funcs: 7, segments: 8, diamond: 0.18, loop: 0.36, call: 0.08, div: 0.025, mix: MixProfile{Base: 0.55, SSEPacked: 0.3, SSEScalar: 0.15}, targetInst: 4_500_000},
	{name: "gemsFDTD", meanLen: 21, spread: 8, funcs: 4, segments: 8, diamond: 0.10, loop: 0.44, call: 0.04, div: 0.015, mix: MixProfile{Base: 0.45, SSEPacked: 0.45, SSEScalar: 0.1}, targetInst: 4_500_000},
	{name: "tonto", meanLen: 9, spread: 5, funcs: 10, segments: 7, diamond: 0.28, loop: 0.24, call: 0.16, div: 0.025, mix: MixProfile{Base: 0.6, SSEScalar: 0.3, SSEPacked: 0.1}, targetInst: 4_000_000},
	{name: "lbm", meanLen: 30, spread: 10, funcs: 2, segments: 8, diamond: 0.06, loop: 0.48, call: 0.02, div: 0.02, mix: MixProfile{Base: 0.4, SSEPacked: 0.5, SSEScalar: 0.1}, targetInst: 5_500_000},
	{name: "wrf", meanLen: 15, spread: 7, funcs: 7, segments: 8, diamond: 0.18, loop: 0.36, call: 0.08, div: 0.02, mix: MixProfile{Base: 0.5, SSEPacked: 0.35, SSEScalar: 0.15}, targetInst: 4_500_000},
	{name: "sphinx3", meanLen: 10, spread: 5, funcs: 8, segments: 7, diamond: 0.26, loop: 0.28, call: 0.14, div: 0.02, mix: MixProfile{Base: 0.6, SSEScalar: 0.25, SSEPacked: 0.15}, targetInst: 4_000_000},
}

// specSeed derives a stable per-benchmark seed from its position.
func specSeed(i int) int64 { return 0x5EC_0000 + int64(i)*7919 }

// specScale maps simulated retirements to real SPEC-sized runs: a SPEC
// reference workload retires on the order of 4x10^11 instructions while
// the simulator runs a few million; the Table 4 "minutes" periods divide
// by the same factor, so sample counts match the paper's production
// density.
const specScale = 100_000

// specShape maps one suite definition onto its declarative spec. The
// seed is positional ([specSeed]), so the generated programs are
// bit-identical to the historical hand-rolled constructors.
func specShape(i int, d specDef) ShapeSpec {
	return ShapeSpec{
		Name:        d.name,
		Description: specDescription(d),
		Class:       collector.ClassMinutes,
		Scale:       specScale,
		SDEBug:      d.sdeBug,
		TargetInst:  d.targetInst,
		Synth: &SynthSpec{
			Name:  d.name,
			Seed:  specSeed(i),
			Funcs: d.funcs,
			Profile: Profile{
				MeanBlockLen:   d.meanLen,
				BlockLenSpread: d.spread,
				Segments:       d.segments,
				DiamondFrac:    d.diamond,
				LoopFrac:       d.loop,
				CallFrac:       d.call,
				DivFrac:        d.div,
				InnerTripMin:   3,
				InnerTripMax:   12,
				Mix:            d.mix,
			},
			OuterTrips: 40,
			LeafFrac:   0.6,
		},
	}
}

// specSuiteSpecs lists the suite's specs in Figure 2 order.
func specSuiteSpecs() []ShapeSpec {
	out := make([]ShapeSpec, len(specDefs))
	for i, d := range specDefs {
		out[i] = specShape(i, d)
	}
	return out
}

func specDescription(d specDef) string {
	kind := "CINT2006-like"
	if d.fp || d.mix.SSEPacked+d.mix.SSEScalar > 0.2 {
		kind = "CFP2006-like"
	}
	return kind + " synthetic benchmark (mean block length " +
		itoa(d.meanLen) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// SPECNames lists the benchmark names in suite order — the name set
// the harness evaluates Figure 2 and Table 1 over.
func SPECNames() []string {
	names := make([]string, len(specDefs))
	for i, d := range specDefs {
		names[i] = d.name
	}
	return names
}
