package workloads

import (
	"runtime"
	"sync"
	"testing"
)

// benchConstruction builds every registered workload — program
// compilation plus calibration dry runs — on a fresh registry, with
// the given worker count. The sequential/parallel pair documents what
// moving construction into the harness worker pool buys: the old
// package-cache design forced workers to construct sequentially in
// the caller; the registry's per-entry memoized calibration lets any
// number of workers build concurrently.
func benchConstruction(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg := NewRegistry()
		for _, spec := range builtinSpecs() {
			if err := reg.Register(spec); err != nil {
				b.Fatal(err)
			}
		}
		names := reg.Names()
		if workers <= 1 {
			for _, name := range names {
				if _, err := reg.Build(name); err != nil {
					b.Fatal(err)
				}
			}
			continue
		}
		idx := make(chan string)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for name := range idx {
					if _, err := reg.Build(name); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		for _, name := range names {
			idx <- name
		}
		close(idx)
		wg.Wait()
	}
}

// BenchmarkWorkloadConstructionSequential builds the full registry one
// workload at a time — the pre-refactor constraint.
func BenchmarkWorkloadConstructionSequential(b *testing.B) { benchConstruction(b, 1) }

// BenchmarkWorkloadConstructionParallel builds the full registry on
// all cores.
func BenchmarkWorkloadConstructionParallel(b *testing.B) {
	benchConstruction(b, runtime.GOMAXPROCS(0))
}

// BenchmarkBuildSnapshotReset measures the steady-state cost of
// checking one workload out of an already-compiled, already-calibrated
// registry entry — the copy-on-write reset path the planner leans on.
// No synthesis, no calibration, no layout derivation: a Build is a
// snapshot checkout plus one Workload allocation.
func BenchmarkBuildSnapshotReset(b *testing.B) {
	reg := NewRegistry()
	for _, spec := range builtinSpecs() {
		if err := reg.Register(spec); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := reg.Build("test40"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Build("test40"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadConstructionWarm builds every workload from an
// already-calibrated registry — the steady state harness workers see
// after the first build of each entry. The delta against the cold
// benchmarks is the memoized calibration: the old constructors paid a
// dry run on every call.
func BenchmarkWorkloadConstructionWarm(b *testing.B) {
	reg := NewRegistry()
	for _, spec := range builtinSpecs() {
		if err := reg.Register(spec); err != nil {
			b.Fatal(err)
		}
	}
	names := reg.Names()
	for _, name := range names {
		if _, err := reg.Build(name); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			if _, err := reg.Build(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}
