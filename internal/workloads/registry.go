package workloads

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hbbp/internal/cpu"
	"hbbp/internal/program"
	"hbbp/internal/sde"
)

// Build and lookup sentinels. Errors returned by a Registry wrap
// these, so callers classify failures with errors.Is.
var (
	// ErrBuild reports a workload that failed to build — typically a
	// calibration dry run that did not complete.
	ErrBuild = errors.New("workloads: build failed")
	// ErrUnknown reports a name no spec is registered under.
	ErrUnknown = errors.New("workloads: unknown workload")
)

// Registry maps workload names to shape specs and compiles them to
// runnable Workloads on demand. It owns compilation and calibration:
// each entry's program image is compiled at most once and snapshotted
// (builds hand out the shared immutable image — the copy-on-write
// reset is O(1) because runs never mutate a finished program), its
// execution layout and instrumentation profile tables are derived
// once alongside, and the dry-run repeat count is resolved at most
// once. All of it is memoized behind per-entry synchronization, so
// any number of goroutines may Build concurrently — harness workers
// construct workloads inside the pool instead of serializing
// construction in the caller, and repeated builds of one entry skip
// synthesis and calibration entirely.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// regEntry pairs a spec with its memoized compiled image and
// calibration.
type regEntry struct {
	spec   ShapeSpec
	once   sync.Once
	repeat int
	err    error

	// imgOnce memoizes the compiled image and its derived execution
	// tables: the snapshot hands the same immutable program to every
	// build, and the layout/instrumentation tables ride along so
	// repeated runs skip their derivation passes too.
	imgOnce sync.Once
	img     *program.Snapshot
	entryFn *program.Function
	layout  *cpu.Layout
	sdeProf *sde.Static
}

// image compiles the entry's program exactly once and returns the
// shared snapshot with its derived tables.
func (e *regEntry) image() (*program.Snapshot, *program.Function, *cpu.Layout, *sde.Static) {
	e.imgOnce.Do(func() {
		prog, entry := e.spec.compile()
		e.img = program.NewSnapshot(prog)
		e.entryFn = entry
		e.layout = cpu.NewLayout(prog)
		e.sdeProf = sde.NewStatic(prog)
	})
	return e.img, e.entryFn, e.layout, e.sdeProf
}

// NewRegistry returns an empty registry. Use [Default] for the
// registry pre-populated with every built-in workload.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*regEntry{}}
}

// Register adds a spec. Names must be unique; a RepeatOf reference
// must name an already-registered spec (which makes calibration
// chains acyclic by construction).
func (r *Registry) Register(spec ShapeSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[spec.Name]; dup {
		return fmt.Errorf("workloads: duplicate spec %s", spec.Name)
	}
	if spec.RepeatOf != "" {
		if _, ok := r.entries[spec.RepeatOf]; !ok {
			return fmt.Errorf("workloads: spec %s calibrates against unregistered %s",
				spec.Name, spec.RepeatOf)
		}
	}
	r.entries[spec.Name] = &regEntry{spec: spec.clone()}
	return nil
}

// entry looks a registration up by name.
func (r *Registry) entry(name string) (*regEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns every registered name in sorted order — the
// deterministic enumeration the façade and cmd/hbbp -list print.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Specs returns deep copies of every registered spec, sorted by name.
// Mutating a returned spec — including through its Synth — does not
// affect the registry.
func (r *Registry) Specs() []ShapeSpec {
	names := r.Names()
	out := make([]ShapeSpec, 0, len(names))
	for _, name := range names {
		e, _ := r.entry(name)
		out = append(out, e.spec.clone())
	}
	return out
}

// Lookup returns a deep copy of the named spec.
func (r *Registry) Lookup(name string) (ShapeSpec, bool) {
	e, ok := r.entry(name)
	if !ok {
		return ShapeSpec{}, false
	}
	return e.spec.clone(), true
}

// Build compiles the named spec into a runnable workload. The first
// build compiles and snapshots the image and pays the calibration dry
// run; every later build checks the shared snapshot out in O(1). The
// returned workload's program is the shared immutable image — runs
// never mutate a finished program (execution state lives in the
// machine, live-text patching copies), so concurrent runs of the same
// entry are safe. Unknown names match [ErrUnknown]; failed
// calibrations match [ErrBuild].
func (r *Registry) Build(name string) (*Workload, error) {
	e, ok := r.entry(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	snap, entry, layout, sdeProf := e.image()
	repeat, err := r.calibrated(e)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:        e.spec.Name,
		Prog:        snap.Checkout(),
		Entry:       entry,
		Image:       snap,
		Layout:      layout,
		SDE:         sdeProf,
		Repeat:      repeat,
		Class:       e.spec.Class,
		Scale:       e.spec.Scale,
		SDEBug:      e.spec.SDEBug,
		Description: e.spec.Description,
	}, nil
}

// BuildSpec compiles an unregistered spec (a caller-authored custom
// workload). Calibration is not memoized — one-off builds pay their
// own dry run — and RepeatOf resolves against this registry.
func (r *Registry) BuildSpec(spec ShapeSpec) (*Workload, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	prog, entry := spec.compile()
	repeat, err := r.resolveVolume(&spec, prog, entry, nil)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:        spec.Name,
		Prog:        prog,
		Entry:       entry,
		Repeat:      repeat,
		Class:       spec.Class,
		Scale:       spec.Scale,
		SDEBug:      spec.SDEBug,
		Description: spec.Description,
	}, nil
}

// resolveVolume turns a spec's volume policy into a repeat count — the
// single definition of the Repeat/RepeatOf/TargetInst switch, shared
// by registered entries (through calibrated's memoization) and one-off
// BuildSpec compilations. prog and entry, when non-nil, are a
// compiled image the caller already has (the entry's snapshot, or a
// fresh BuildSpec compilation); calibration compiles its own dry-run
// image otherwise. layout, when non-nil, is prog's shared dispatch
// table, so the dry run reuses it too.
//
// The dry run is deliberately context-free: its result memoizes
// process-wide for registered entries, and honouring a caller's
// context would let the first (cancelled) builder poison the cache
// for everyone after it. Promptness is bounded instead by the
// calibration retirement guard.
func (r *Registry) resolveVolume(spec *ShapeSpec, prog *program.Program, entry *program.Function, layout *cpu.Layout) (int, error) {
	switch {
	case spec.Repeat > 0:
		return spec.Repeat, nil
	case spec.RepeatOf != "":
		// For registered entries, registration ordering makes the chain
		// acyclic: a spec can only reference entries registered before
		// it.
		ref, ok := r.entry(spec.RepeatOf)
		if !ok {
			return 0, fmt.Errorf("%w: %s calibrates against %q",
				ErrUnknown, spec.Name, spec.RepeatOf)
		}
		return r.calibrated(ref)
	default:
		if prog == nil {
			prog, entry = spec.compile()
		}
		dry := &Workload{Name: spec.Name, Prog: prog, Entry: entry, Layout: layout}
		per, err := dry.InstructionsPerRun()
		if err != nil {
			return 0, fmt.Errorf("%s calibration: %w", spec.Name, err)
		}
		if per == 0 {
			return 1, nil
		}
		repeat := int(spec.TargetInst / per)
		if repeat < 1 {
			repeat = 1
		}
		return repeat, nil
	}
}

// calibrated resolves a registered entry's repeat count exactly once,
// memoized behind the entry's sync.Once. The dry run executes the
// entry's snapshotted image with its shared layout.
func (r *Registry) calibrated(e *regEntry) (int, error) {
	e.once.Do(func() {
		snap, entry, layout, _ := e.image()
		e.repeat, e.err = r.resolveVolume(&e.spec, snap.Program(), entry, layout)
	})
	return e.repeat, e.err
}

// Default returns the registry holding every built-in workload: the
// paper's case studies, the SPEC CPU2006 stand-ins, the four extra
// scenario families and the training corpus. The registry — and its
// memoized calibrations — is shared process-wide.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultRegistry = NewRegistry()
		for _, spec := range builtinSpecs() {
			if err := defaultRegistry.Register(spec); err != nil {
				panic(err) // a broken built-in table is a programming error
			}
		}
	})
	return defaultRegistry
}

var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// builtinSpecs assembles the full built-in table: case studies first,
// then the SPEC suite, the extra scenario families, and the training
// corpus (registered so it is enumerable and runnable like any other
// workload).
func builtinSpecs() []ShapeSpec {
	specs := caseStudySpecs()
	specs = append(specs, specSuiteSpecs()...)
	specs = append(specs, familySpecs()...)
	specs = append(specs, trainingSpecs()...)
	return specs
}
