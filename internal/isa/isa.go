// Package isa defines the synthetic x86-flavoured instruction set used by
// the HBBP reproduction.
//
// The paper consumes real x86 binaries through the XED disassembler; what
// its pipeline actually needs from an ISA is (a) a stable mnemonic
// identity per instruction, (b) static attributes (ISA extension,
// category, packed/scalar flags, operand and memory behaviour) that the
// analyzer folds into instruction mixes, and (c) encoded instruction
// lengths so basic blocks occupy realistic address ranges. This package
// provides exactly that: a fixed instruction table spanning the BASE,
// X87, SSE and AVX extensions that appear in the paper's evaluation, a
// byte-level encoder/decoder standing in for XED, and helpers for
// building custom instruction taxonomies.
package isa

import "fmt"

// Ext identifies the ISA extension an instruction belongs to. The paper's
// Fitter and CLForward case studies break mixes down by exactly these
// families (Table 6, Table 8).
type Ext uint8

// ISA extensions.
const (
	Base Ext = iota // scalar integer x86
	X87             // legacy floating point stack
	SSE             // 128-bit vector extension
	AVX             // 256-bit vector extension
	numExt
)

// String returns the conventional family name.
func (e Ext) String() string {
	switch e {
	case Base:
		return "BASE"
	case X87:
		return "X87"
	case SSE:
		return "SSE"
	case AVX:
		return "AVX"
	}
	return fmt.Sprintf("Ext(%d)", uint8(e))
}

// Category is a coarse behavioural class. Categories drive the secondary
// attributes the analyzer derives (Section V.B of the paper) and the
// branch handling in the CPU and PMU models.
type Category uint8

// Instruction categories.
const (
	CatArith      Category = iota // add/sub/mul and friends
	CatDivide                     // long-latency division
	CatSqrt                       // long-latency square root
	CatLogic                      // and/or/xor/shift
	CatMove                       // register and memory moves
	CatCompare                    // cmp/test/ucomiss
	CatConvert                    // int<->float conversions
	CatCondBranch                 // conditional jumps
	CatJump                       // unconditional jumps
	CatCall                       // calls
	CatReturn                     // returns
	CatStack                      // push/pop
	CatNop                        // nops and padding
	CatSync                       // locked/atomic operations
	CatOther                      // anything else
	numCategory
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CatArith:
		return "arith"
	case CatDivide:
		return "divide"
	case CatSqrt:
		return "sqrt"
	case CatLogic:
		return "logic"
	case CatMove:
		return "move"
	case CatCompare:
		return "compare"
	case CatConvert:
		return "convert"
	case CatCondBranch:
		return "cond-branch"
	case CatJump:
		return "jump"
	case CatCall:
		return "call"
	case CatReturn:
		return "return"
	case CatStack:
		return "stack"
	case CatNop:
		return "nop"
	case CatSync:
		return "sync"
	case CatOther:
		return "other"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Packing describes the SIMD shape of an instruction, mirroring the
// PACKING axis of the paper's CLForward pivot view (Table 8).
type Packing uint8

// Packing values.
const (
	NoPacking Packing = iota // not a floating-point/SIMD operation
	Scalar                   // scalar FP operation
	Packed                   // packed (vectorized) operation
)

// String returns the packing label used in pivot views.
func (p Packing) String() string {
	switch p {
	case NoPacking:
		return "NONE"
	case Scalar:
		return "SCALAR"
	case Packed:
		return "PACKED"
	}
	return fmt.Sprintf("Packing(%d)", uint8(p))
}

// Info holds the static attributes of one instruction. All fields are
// immutable once the table is built.
type Info struct {
	Name      string   // canonical mnemonic, e.g. "VADDPS"
	Ext       Ext      // ISA extension family
	Cat       Category // behavioural category
	Packing   Packing  // SIMD shape
	Latency   int      // nominal execution latency in cycles
	Bytes     int      // encoded length in bytes (1..15, like x86)
	Operands  int      // number of explicit operands
	VecBits   int      // vector width in bits (0 for scalar integer)
	ReadsMem  bool     // instruction may read memory
	WritesMem bool     // instruction may write memory
	FLOPs     int      // floating point operations per execution
}

// IsBranch reports whether the instruction redirects control flow
// (conditional or unconditional jumps, calls and returns).
func (in Info) IsBranch() bool {
	switch in.Cat {
	case CatCondBranch, CatJump, CatCall, CatReturn:
		return true
	}
	return false
}

// IsLongLatency reports whether the instruction's latency is at or above
// the threshold the PMU shadowing model keys on. Divisions, square roots
// and x87 transcendental-class operations qualify — the same instruction
// population the paper's "long latency instructions" taxonomy targets.
func (in Info) IsLongLatency() bool { return in.Latency >= LongLatencyThreshold }

// LongLatencyThreshold is the cycle latency at and above which an
// instruction is considered long-latency for shadowing and taxonomy
// purposes.
const LongLatencyThreshold = 10
