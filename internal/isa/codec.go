package isa

import (
	"encoding/binary"
	"fmt"
)

// This file is the reproduction's stand-in for XED, the "X86 Encoder
// Decoder Software Library" the paper's analyzer is built on. Programs
// are stored as byte streams with variable-length instructions; the
// decoder recovers opcode identity and instruction boundaries, which is
// all the analyzer needs to build static basic block maps.
//
// Encoding: every instruction starts with a 2-byte little-endian opcode
// followed by Info.Bytes-2 padding bytes (0x90). Opcodes whose declared
// length is below 3 bytes use a compact single-byte form: 0xC0|op for
// 1-byte instructions and 0x80|op-prefixed 2-byte forms. The compact
// ranges keep encoded block sizes matching the instruction table's byte
// counts, so address arithmetic behaves like real x86 code layout.

const (
	compact1Prefix = 0xC0 // single-byte instructions: 0xC0 | compact index
	compact2Prefix = 0x80 // two-byte instructions: 0x80 | compact index, pad
	wideMarker     = 0x02 // wide instructions: marker, op lo, op hi, padding
	padByte        = 0x90
)

// compact1 and compact2 list the opcodes eligible for the short forms.
// They are derived from the table at init time, so adding instructions
// cannot silently break the codec.
var (
	compact1      []Op
	compact2      []Op
	compact1Index map[Op]int
	compact2Index map[Op]int
)

func init() {
	compact1Index = make(map[Op]int)
	compact2Index = make(map[Op]int)
	for op := Op(1); op < numOps; op++ {
		switch infoTable[op].Bytes {
		case 1:
			compact1Index[op] = len(compact1)
			compact1 = append(compact1, op)
		case 2:
			compact2Index[op] = len(compact2)
			compact2 = append(compact2, op)
		}
	}
	if len(compact1) > 0x3F || len(compact2) > 0x3F {
		panic("isa: too many compact opcodes for single-byte index space")
	}
}

// Decoded is one instruction recovered from a byte stream.
type Decoded struct {
	Op   Op     // decoded opcode
	Addr uint64 // address of the first byte
	Len  int    // encoded length in bytes
}

// AppendEncode appends the encoding of op to dst and returns the extended
// slice. The encoded length always equals op.Info().Bytes.
func AppendEncode(dst []byte, op Op) []byte {
	info := op.Info()
	switch info.Bytes {
	case 1:
		return append(dst, byte(compact1Prefix|compact1Index[op]))
	case 2:
		return append(dst, byte(compact2Prefix|compact2Index[op]), padByte)
	default:
		dst = append(dst, wideMarker)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(op))
		for i := 3; i < info.Bytes; i++ {
			dst = append(dst, padByte)
		}
		return dst
	}
}

// Encode encodes a sequence of opcodes into a fresh byte slice.
func Encode(ops []Op) []byte {
	n := 0
	for _, op := range ops {
		n += op.Info().Bytes
	}
	buf := make([]byte, 0, n)
	for _, op := range ops {
		buf = AppendEncode(buf, op)
	}
	return buf
}

// DecodeOne decodes the instruction at the start of code, which is laid
// out at address addr. It returns the decoded instruction and the number
// of bytes consumed.
func DecodeOne(code []byte, addr uint64) (Decoded, error) {
	if len(code) == 0 {
		return Decoded{}, fmt.Errorf("isa: decode at %#x: empty code", addr)
	}
	b := code[0]
	switch {
	case b&compact1Prefix == compact1Prefix:
		idx := int(b &^ compact1Prefix)
		if idx >= len(compact1) {
			return Decoded{}, fmt.Errorf("isa: decode at %#x: bad compact1 index %d", addr, idx)
		}
		return Decoded{Op: compact1[idx], Addr: addr, Len: 1}, nil
	case b&compact2Prefix == compact2Prefix:
		idx := int(b &^ compact2Prefix)
		if idx >= len(compact2) {
			return Decoded{}, fmt.Errorf("isa: decode at %#x: bad compact2 index %d", addr, idx)
		}
		if len(code) < 2 {
			return Decoded{}, fmt.Errorf("isa: decode at %#x: truncated 2-byte instruction", addr)
		}
		return Decoded{Op: compact2[idx], Addr: addr, Len: 2}, nil
	case b == wideMarker:
		if len(code) < 3 {
			return Decoded{}, fmt.Errorf("isa: decode at %#x: truncated wide instruction", addr)
		}
		op := Op(binary.LittleEndian.Uint16(code[1:3]))
		if !op.Valid() {
			return Decoded{}, fmt.Errorf("isa: decode at %#x: invalid opcode %d", addr, uint16(op))
		}
		n := op.Info().Bytes
		if len(code) < n {
			return Decoded{}, fmt.Errorf("isa: decode at %#x: need %d bytes, have %d", addr, n, len(code))
		}
		return Decoded{Op: op, Addr: addr, Len: n}, nil
	default:
		return Decoded{}, fmt.Errorf("isa: decode at %#x: unknown leading byte %#x", addr, b)
	}
}

// Decode disassembles a full byte stream laid out at base. It fails on
// the first malformed instruction.
func Decode(code []byte, base uint64) ([]Decoded, error) {
	var out []Decoded
	off := 0
	for off < len(code) {
		d, err := DecodeOne(code[off:], base+uint64(off))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		off += d.Len
	}
	return out, nil
}
