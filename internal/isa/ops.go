package isa

import (
	"fmt"
	"sort"
)

// Op identifies one instruction in the table. The zero value is invalid,
// so decoded or generated instruction streams can never silently carry an
// uninitialised opcode.
type Op uint16

// Base (scalar integer) instructions.
const (
	opInvalid Op = iota

	MOV
	MOVSXD
	MOVZX
	LEA
	ADD
	SUB
	INC
	DEC
	NEG
	IMUL
	MUL
	DIV
	IDIV
	CDQE
	CDQ
	AND
	OR
	XOR
	NOT
	SHL
	SHR
	SAR
	ROL
	CMP
	TEST
	SETcc
	CMOVcc
	JMP
	JZ
	JNZ
	JLE
	JNLE
	JL
	JNL
	JB
	JNB
	JS
	CALL
	RET_NEAR
	PUSH
	POP
	NOP
	XCHG
	XADD
	CMPXCHG
	LOCK_ADD
	SYSCALL
	SYSRET

	// X87 legacy floating point.
	FLD
	FST
	FSTP
	FXCH
	FADD
	FSUB
	FMUL
	FDIV
	FSQRT
	FSIN
	FCOMI
	FILD
	FISTP

	// SSE (128-bit) instructions.
	MOVAPS
	MOVUPS
	MOVSS
	MOVSD_X
	MOVD
	ADDPS
	ADDSS
	SUBPS
	SUBSS
	MULPS
	MULSS
	DIVPS
	DIVSS
	SQRTPS
	SQRTSS
	MINPS
	MAXPS
	XORPS
	ANDPS
	UCOMISS
	CMPPS
	SHUFPS
	UNPCKLPS
	CVTSI2SS
	CVTSI2SD
	CVTTSS2SI
	CVTPS2PD
	PADDD
	PSUBD
	PMULLD
	PAND
	POR
	PCMPEQD

	// AVX (256-bit) instructions.
	VMOVAPS
	VMOVUPS
	VMOVSS
	VBROADCASTSS
	VADDPS
	VADDSS
	VSUBPS
	VMULPS
	VMULSS
	VDIVPS
	VDIVSS
	VSQRTPS
	VMINPS
	VMAXPS
	VXORPS
	VANDPS
	VUCOMISS
	VCMPPS
	VSHUFPS
	VCVTSI2SS
	VCVTDQ2PS
	VFMADD231PS
	VFMADD231SS
	VPADDD
	VPMULLD
	VZEROUPPER

	numOps
)

// NumOps is the number of defined opcodes, excluding the invalid zero
// value. Dense Op-indexed arrays can be sized with NumOps+1.
const NumOps = int(numOps) - 1

// infoTable carries the static attributes for every opcode. Latencies are
// representative Ivy-Bridge-class figures (after Fog's instruction
// tables): simple ALU ops 1 cycle, multiplies 3-5, divisions and square
// roots 10-40, and memory-touching moves slightly above register moves.
var infoTable = [numOps]Info{
	opInvalid: {Name: "INVALID", Cat: CatOther, Latency: 1, Bytes: 1},

	MOV:      {Name: "MOV", Ext: Base, Cat: CatMove, Latency: 1, Bytes: 3, Operands: 2, ReadsMem: true},
	MOVSXD:   {Name: "MOVSXD", Ext: Base, Cat: CatMove, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true},
	MOVZX:    {Name: "MOVZX", Ext: Base, Cat: CatMove, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true},
	LEA:      {Name: "LEA", Ext: Base, Cat: CatArith, Latency: 1, Bytes: 4, Operands: 2},
	ADD:      {Name: "ADD", Ext: Base, Cat: CatArith, Latency: 1, Bytes: 3, Operands: 2},
	SUB:      {Name: "SUB", Ext: Base, Cat: CatArith, Latency: 1, Bytes: 3, Operands: 2},
	INC:      {Name: "INC", Ext: Base, Cat: CatArith, Latency: 1, Bytes: 2, Operands: 1},
	DEC:      {Name: "DEC", Ext: Base, Cat: CatArith, Latency: 1, Bytes: 2, Operands: 1},
	NEG:      {Name: "NEG", Ext: Base, Cat: CatArith, Latency: 1, Bytes: 2, Operands: 1},
	IMUL:     {Name: "IMUL", Ext: Base, Cat: CatArith, Latency: 3, Bytes: 4, Operands: 2},
	MUL:      {Name: "MUL", Ext: Base, Cat: CatArith, Latency: 3, Bytes: 3, Operands: 1},
	DIV:      {Name: "DIV", Ext: Base, Cat: CatDivide, Latency: 25, Bytes: 3, Operands: 1},
	IDIV:     {Name: "IDIV", Ext: Base, Cat: CatDivide, Latency: 28, Bytes: 3, Operands: 1},
	CDQE:     {Name: "CDQE", Ext: Base, Cat: CatConvert, Latency: 1, Bytes: 2, Operands: 0},
	CDQ:      {Name: "CDQ", Ext: Base, Cat: CatConvert, Latency: 1, Bytes: 1, Operands: 0},
	AND:      {Name: "AND", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	OR:       {Name: "OR", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	XOR:      {Name: "XOR", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	NOT:      {Name: "NOT", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 2, Operands: 1},
	SHL:      {Name: "SHL", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	SHR:      {Name: "SHR", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	SAR:      {Name: "SAR", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	ROL:      {Name: "ROL", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 2},
	CMP:      {Name: "CMP", Ext: Base, Cat: CatCompare, Latency: 1, Bytes: 3, Operands: 2, ReadsMem: true},
	TEST:     {Name: "TEST", Ext: Base, Cat: CatCompare, Latency: 1, Bytes: 3, Operands: 2},
	SETcc:    {Name: "SETcc", Ext: Base, Cat: CatLogic, Latency: 1, Bytes: 3, Operands: 1},
	CMOVcc:   {Name: "CMOVcc", Ext: Base, Cat: CatMove, Latency: 2, Bytes: 4, Operands: 2},
	JMP:      {Name: "JMP", Ext: Base, Cat: CatJump, Latency: 1, Bytes: 2, Operands: 1},
	JZ:       {Name: "JZ", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JNZ:      {Name: "JNZ", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JLE:      {Name: "JLE", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JNLE:     {Name: "JNLE", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JL:       {Name: "JL", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JNL:      {Name: "JNL", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JB:       {Name: "JB", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JNB:      {Name: "JNB", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	JS:       {Name: "JS", Ext: Base, Cat: CatCondBranch, Latency: 1, Bytes: 2, Operands: 1},
	CALL:     {Name: "CALL", Ext: Base, Cat: CatCall, Latency: 2, Bytes: 5, Operands: 1, WritesMem: true},
	RET_NEAR: {Name: "RET_NEAR", Ext: Base, Cat: CatReturn, Latency: 2, Bytes: 1, Operands: 0, ReadsMem: true},
	PUSH:     {Name: "PUSH", Ext: Base, Cat: CatStack, Latency: 1, Bytes: 1, Operands: 1, WritesMem: true},
	POP:      {Name: "POP", Ext: Base, Cat: CatStack, Latency: 1, Bytes: 1, Operands: 1, ReadsMem: true},
	NOP:      {Name: "NOP", Ext: Base, Cat: CatNop, Latency: 1, Bytes: 1, Operands: 0},
	XCHG:     {Name: "XCHG", Ext: Base, Cat: CatSync, Latency: 20, Bytes: 3, Operands: 2, ReadsMem: true, WritesMem: true},
	XADD:     {Name: "XADD", Ext: Base, Cat: CatSync, Latency: 20, Bytes: 4, Operands: 2, ReadsMem: true, WritesMem: true},
	CMPXCHG:  {Name: "CMPXCHG", Ext: Base, Cat: CatSync, Latency: 20, Bytes: 4, Operands: 2, ReadsMem: true, WritesMem: true},
	LOCK_ADD: {Name: "LOCK_ADD", Ext: Base, Cat: CatSync, Latency: 18, Bytes: 4, Operands: 2, ReadsMem: true, WritesMem: true},
	SYSCALL:  {Name: "SYSCALL", Ext: Base, Cat: CatCall, Latency: 30, Bytes: 2, Operands: 0},
	SYSRET:   {Name: "SYSRET", Ext: Base, Cat: CatReturn, Latency: 30, Bytes: 2, Operands: 0},

	FLD:   {Name: "FLD", Ext: X87, Cat: CatMove, Packing: Scalar, Latency: 3, Bytes: 2, Operands: 1, ReadsMem: true, VecBits: 80},
	FST:   {Name: "FST", Ext: X87, Cat: CatMove, Packing: Scalar, Latency: 3, Bytes: 2, Operands: 1, WritesMem: true, VecBits: 80},
	FSTP:  {Name: "FSTP", Ext: X87, Cat: CatMove, Packing: Scalar, Latency: 3, Bytes: 2, Operands: 1, WritesMem: true, VecBits: 80},
	FXCH:  {Name: "FXCH", Ext: X87, Cat: CatMove, Packing: Scalar, Latency: 1, Bytes: 2, Operands: 1, VecBits: 80},
	FADD:  {Name: "FADD", Ext: X87, Cat: CatArith, Packing: Scalar, Latency: 3, Bytes: 2, Operands: 1, FLOPs: 1, VecBits: 80},
	FSUB:  {Name: "FSUB", Ext: X87, Cat: CatArith, Packing: Scalar, Latency: 3, Bytes: 2, Operands: 1, FLOPs: 1, VecBits: 80},
	FMUL:  {Name: "FMUL", Ext: X87, Cat: CatArith, Packing: Scalar, Latency: 5, Bytes: 2, Operands: 1, FLOPs: 1, VecBits: 80},
	FDIV:  {Name: "FDIV", Ext: X87, Cat: CatDivide, Packing: Scalar, Latency: 24, Bytes: 2, Operands: 1, FLOPs: 1, VecBits: 80},
	FSQRT: {Name: "FSQRT", Ext: X87, Cat: CatSqrt, Packing: Scalar, Latency: 27, Bytes: 2, Operands: 0, FLOPs: 1, VecBits: 80},
	FSIN:  {Name: "FSIN", Ext: X87, Cat: CatOther, Packing: Scalar, Latency: 80, Bytes: 2, Operands: 0, FLOPs: 1, VecBits: 80},
	FCOMI: {Name: "FCOMI", Ext: X87, Cat: CatCompare, Packing: Scalar, Latency: 3, Bytes: 2, Operands: 1, VecBits: 80},
	FILD:  {Name: "FILD", Ext: X87, Cat: CatConvert, Packing: Scalar, Latency: 4, Bytes: 2, Operands: 1, ReadsMem: true, VecBits: 80},
	FISTP: {Name: "FISTP", Ext: X87, Cat: CatConvert, Packing: Scalar, Latency: 4, Bytes: 2, Operands: 1, WritesMem: true, VecBits: 80},

	MOVAPS:    {Name: "MOVAPS", Ext: SSE, Cat: CatMove, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true, VecBits: 128},
	MOVUPS:    {Name: "MOVUPS", Ext: SSE, Cat: CatMove, Packing: Packed, Latency: 2, Bytes: 4, Operands: 2, ReadsMem: true, WritesMem: true, VecBits: 128},
	MOVSS:     {Name: "MOVSS", Ext: SSE, Cat: CatMove, Packing: Scalar, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true, VecBits: 32},
	MOVSD_X:   {Name: "MOVSD_X", Ext: SSE, Cat: CatMove, Packing: Scalar, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true, VecBits: 64},
	MOVD:      {Name: "MOVD", Ext: SSE, Cat: CatMove, Packing: Scalar, Latency: 1, Bytes: 4, Operands: 2, VecBits: 32},
	ADDPS:     {Name: "ADDPS", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	ADDSS:     {Name: "ADDSS", Ext: SSE, Cat: CatArith, Packing: Scalar, Latency: 3, Bytes: 4, Operands: 2, FLOPs: 1, VecBits: 32},
	SUBPS:     {Name: "SUBPS", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	SUBSS:     {Name: "SUBSS", Ext: SSE, Cat: CatArith, Packing: Scalar, Latency: 3, Bytes: 4, Operands: 2, FLOPs: 1, VecBits: 32},
	MULPS:     {Name: "MULPS", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 5, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	MULSS:     {Name: "MULSS", Ext: SSE, Cat: CatArith, Packing: Scalar, Latency: 5, Bytes: 4, Operands: 2, FLOPs: 1, VecBits: 32},
	DIVPS:     {Name: "DIVPS", Ext: SSE, Cat: CatDivide, Packing: Packed, Latency: 21, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	DIVSS:     {Name: "DIVSS", Ext: SSE, Cat: CatDivide, Packing: Scalar, Latency: 14, Bytes: 4, Operands: 2, FLOPs: 1, VecBits: 32},
	SQRTPS:    {Name: "SQRTPS", Ext: SSE, Cat: CatSqrt, Packing: Packed, Latency: 22, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	SQRTSS:    {Name: "SQRTSS", Ext: SSE, Cat: CatSqrt, Packing: Scalar, Latency: 14, Bytes: 4, Operands: 2, FLOPs: 1, VecBits: 32},
	MINPS:     {Name: "MINPS", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	MAXPS:     {Name: "MAXPS", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 2, FLOPs: 4, VecBits: 128},
	XORPS:     {Name: "XORPS", Ext: SSE, Cat: CatLogic, Packing: Packed, Latency: 1, Bytes: 3, Operands: 2, VecBits: 128},
	ANDPS:     {Name: "ANDPS", Ext: SSE, Cat: CatLogic, Packing: Packed, Latency: 1, Bytes: 3, Operands: 2, VecBits: 128},
	UCOMISS:   {Name: "UCOMISS", Ext: SSE, Cat: CatCompare, Packing: Scalar, Latency: 2, Bytes: 4, Operands: 2, VecBits: 32},
	CMPPS:     {Name: "CMPPS", Ext: SSE, Cat: CatCompare, Packing: Packed, Latency: 3, Bytes: 5, Operands: 3, VecBits: 128},
	SHUFPS:    {Name: "SHUFPS", Ext: SSE, Cat: CatOther, Packing: Packed, Latency: 1, Bytes: 5, Operands: 3, VecBits: 128},
	UNPCKLPS:  {Name: "UNPCKLPS", Ext: SSE, Cat: CatOther, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, VecBits: 128},
	CVTSI2SS:  {Name: "CVTSI2SS", Ext: SSE, Cat: CatConvert, Packing: Scalar, Latency: 5, Bytes: 4, Operands: 2, VecBits: 32},
	CVTSI2SD:  {Name: "CVTSI2SD", Ext: SSE, Cat: CatConvert, Packing: Scalar, Latency: 5, Bytes: 4, Operands: 2, VecBits: 64},
	CVTTSS2SI: {Name: "CVTTSS2SI", Ext: SSE, Cat: CatConvert, Packing: Scalar, Latency: 5, Bytes: 4, Operands: 2, VecBits: 32},
	CVTPS2PD:  {Name: "CVTPS2PD", Ext: SSE, Cat: CatConvert, Packing: Packed, Latency: 2, Bytes: 4, Operands: 2, VecBits: 128},
	PADDD:     {Name: "PADDD", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, VecBits: 128},
	PSUBD:     {Name: "PSUBD", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, VecBits: 128},
	PMULLD:    {Name: "PMULLD", Ext: SSE, Cat: CatArith, Packing: Packed, Latency: 5, Bytes: 5, Operands: 2, VecBits: 128},
	PAND:      {Name: "PAND", Ext: SSE, Cat: CatLogic, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, VecBits: 128},
	POR:       {Name: "POR", Ext: SSE, Cat: CatLogic, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, VecBits: 128},
	PCMPEQD:   {Name: "PCMPEQD", Ext: SSE, Cat: CatCompare, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, VecBits: 128},

	VMOVAPS:      {Name: "VMOVAPS", Ext: AVX, Cat: CatMove, Packing: Packed, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true, VecBits: 256},
	VMOVUPS:      {Name: "VMOVUPS", Ext: AVX, Cat: CatMove, Packing: Packed, Latency: 2, Bytes: 4, Operands: 2, ReadsMem: true, WritesMem: true, VecBits: 256},
	VMOVSS:       {Name: "VMOVSS", Ext: AVX, Cat: CatMove, Packing: Scalar, Latency: 1, Bytes: 4, Operands: 2, ReadsMem: true, VecBits: 32},
	VBROADCASTSS: {Name: "VBROADCASTSS", Ext: AVX, Cat: CatMove, Packing: Packed, Latency: 3, Bytes: 5, Operands: 2, ReadsMem: true, VecBits: 256},
	VADDPS:       {Name: "VADDPS", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 3, FLOPs: 8, VecBits: 256},
	VADDSS:       {Name: "VADDSS", Ext: AVX, Cat: CatArith, Packing: Scalar, Latency: 3, Bytes: 4, Operands: 3, FLOPs: 1, VecBits: 32},
	VSUBPS:       {Name: "VSUBPS", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 3, FLOPs: 8, VecBits: 256},
	VMULPS:       {Name: "VMULPS", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 5, Bytes: 4, Operands: 3, FLOPs: 8, VecBits: 256},
	VMULSS:       {Name: "VMULSS", Ext: AVX, Cat: CatArith, Packing: Scalar, Latency: 5, Bytes: 4, Operands: 3, FLOPs: 1, VecBits: 32},
	VDIVPS:       {Name: "VDIVPS", Ext: AVX, Cat: CatDivide, Packing: Packed, Latency: 29, Bytes: 4, Operands: 3, FLOPs: 8, VecBits: 256},
	VDIVSS:       {Name: "VDIVSS", Ext: AVX, Cat: CatDivide, Packing: Scalar, Latency: 14, Bytes: 4, Operands: 3, FLOPs: 1, VecBits: 32},
	VSQRTPS:      {Name: "VSQRTPS", Ext: AVX, Cat: CatSqrt, Packing: Packed, Latency: 29, Bytes: 4, Operands: 2, FLOPs: 8, VecBits: 256},
	VMINPS:       {Name: "VMINPS", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 3, FLOPs: 8, VecBits: 256},
	VMAXPS:       {Name: "VMAXPS", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 3, Bytes: 4, Operands: 3, FLOPs: 8, VecBits: 256},
	VXORPS:       {Name: "VXORPS", Ext: AVX, Cat: CatLogic, Packing: Packed, Latency: 1, Bytes: 4, Operands: 3, VecBits: 256},
	VANDPS:       {Name: "VANDPS", Ext: AVX, Cat: CatLogic, Packing: Packed, Latency: 1, Bytes: 4, Operands: 3, VecBits: 256},
	VUCOMISS:     {Name: "VUCOMISS", Ext: AVX, Cat: CatCompare, Packing: Scalar, Latency: 2, Bytes: 4, Operands: 2, VecBits: 32},
	VCMPPS:       {Name: "VCMPPS", Ext: AVX, Cat: CatCompare, Packing: Packed, Latency: 3, Bytes: 5, Operands: 3, VecBits: 256},
	VSHUFPS:      {Name: "VSHUFPS", Ext: AVX, Cat: CatOther, Packing: Packed, Latency: 1, Bytes: 5, Operands: 3, VecBits: 256},
	VCVTSI2SS:    {Name: "VCVTSI2SS", Ext: AVX, Cat: CatConvert, Packing: Scalar, Latency: 5, Bytes: 4, Operands: 3, VecBits: 32},
	VCVTDQ2PS:    {Name: "VCVTDQ2PS", Ext: AVX, Cat: CatConvert, Packing: Packed, Latency: 3, Bytes: 4, Operands: 2, VecBits: 256},
	VFMADD231PS:  {Name: "VFMADD231PS", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 5, Bytes: 5, Operands: 3, FLOPs: 16, VecBits: 256},
	VFMADD231SS:  {Name: "VFMADD231SS", Ext: AVX, Cat: CatArith, Packing: Scalar, Latency: 5, Bytes: 5, Operands: 3, FLOPs: 2, VecBits: 32},
	VPADDD:       {Name: "VPADDD", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 1, Bytes: 4, Operands: 3, VecBits: 256},
	VPMULLD:      {Name: "VPMULLD", Ext: AVX, Cat: CatArith, Packing: Packed, Latency: 5, Bytes: 5, Operands: 3, VecBits: 256},
	VZEROUPPER:   {Name: "VZEROUPPER", Ext: AVX, Cat: CatOther, Packing: NoPacking, Latency: 1, Bytes: 3, Operands: 0},
}

// byName maps canonical mnemonic strings back to opcodes.
var byName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(1); op < numOps; op++ {
		m[infoTable[op].Name] = op
	}
	return m
}()

// Valid reports whether op refers to a defined instruction.
func (op Op) Valid() bool { return op > opInvalid && op < numOps }

// Info returns the static attributes of op. It panics on an invalid
// opcode: an invalid Op in an instruction stream is a programming error,
// never an expected runtime condition.
func (op Op) Info() Info {
	if !op.Valid() {
		panic(fmt.Sprintf("isa: invalid opcode %d", uint16(op)))
	}
	return infoTable[op]
}

// String returns the canonical mnemonic.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("INVALID(%d)", uint16(op))
	}
	return infoTable[op].Name
}

// Bytes returns the encoded length of op in bytes.
func (op Op) Bytes() int { return op.Info().Bytes }

// Latency returns the nominal execution latency of op in cycles.
func (op Op) Latency() int { return op.Info().Latency }

// IsBranch reports whether op redirects control flow.
func (op Op) IsBranch() bool { return op.Info().IsBranch() }

// Parse returns the opcode for a canonical mnemonic string.
func Parse(name string) (Op, error) {
	if op, ok := byName[name]; ok {
		return op, nil
	}
	return opInvalid, fmt.Errorf("isa: unknown mnemonic %q", name)
}

// All returns every defined opcode in table order.
func All() []Op {
	ops := make([]Op, 0, NumOps)
	for op := Op(1); op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

// ByExt returns the opcodes belonging to the given ISA extension, sorted
// by mnemonic for deterministic iteration.
func ByExt(e Ext) []Op {
	var ops []Op
	for op := Op(1); op < numOps; op++ {
		if infoTable[op].Ext == e {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	return ops
}

// CondBranches returns the conditional branch opcodes.
func CondBranches() []Op {
	var ops []Op
	for op := Op(1); op < numOps; op++ {
		if infoTable[op].Cat == CatCondBranch {
			ops = append(ops, op)
		}
	}
	return ops
}
