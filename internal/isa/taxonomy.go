package isa

// Taxonomies let users classify instructions into custom, possibly
// overlapping groups — the paper's analyzer supports "the easy creation
// of custom instruction taxonomies based on instruction properties",
// e.g. a "long latency instructions" group (DIV, SQRT, XCHG R,M) or a
// "synchronization instructions" group (XADD, LOCK variants).

// Group is a named predicate over instruction attributes.
type Group struct {
	Name  string
	Match func(Info) bool
}

// Taxonomy is an ordered list of groups. An instruction is classified
// into the first group whose predicate matches; instructions matching no
// group fall into the Other bucket.
type Taxonomy struct {
	Name   string
	Groups []Group
}

// Classify returns the name of the first matching group, or "OTHER" when
// no group matches.
func (t Taxonomy) Classify(op Op) string {
	info := op.Info()
	for _, g := range t.Groups {
		if g.Match(info) {
			return g.Name
		}
	}
	return "OTHER"
}

// Buckets returns the group names in classification order, with the
// trailing OTHER bucket included.
func (t Taxonomy) Buckets() []string {
	names := make([]string, 0, len(t.Groups)+1)
	for _, g := range t.Groups {
		names = append(names, g.Name)
	}
	return append(names, "OTHER")
}

// ByExtension is the built-in taxonomy splitting instructions by ISA
// family, the breakdown used throughout the paper's Fitter case study.
func ByExtension() Taxonomy {
	mk := func(e Ext) Group {
		return Group{Name: e.String(), Match: func(in Info) bool { return in.Ext == e }}
	}
	return Taxonomy{
		Name:   "instruction set",
		Groups: []Group{mk(AVX), mk(SSE), mk(X87), mk(Base)},
	}
}

// ByPacking is the built-in taxonomy splitting instructions into packed,
// scalar and unpacked groups — the PACKING axis of the CLForward view
// (Table 8).
func ByPacking() Taxonomy {
	mk := func(p Packing) Group {
		return Group{Name: p.String(), Match: func(in Info) bool { return in.Packing == p }}
	}
	return Taxonomy{
		Name:   "packing",
		Groups: []Group{mk(Packed), mk(Scalar), mk(NoPacking)},
	}
}

// LongLatency is the example user-defined group from the paper: DIV,
// SQRT, "XCHG R,M" and other operations whose latency dominates
// surrounding code.
func LongLatency() Taxonomy {
	return Taxonomy{
		Name: "long latency instructions",
		Groups: []Group{{
			Name:  "LONG_LATENCY",
			Match: func(in Info) bool { return in.IsLongLatency() },
		}},
	}
}

// Synchronization is the example user-defined group containing XADD and
// LOCK variants.
func Synchronization() Taxonomy {
	return Taxonomy{
		Name: "synchronization instructions",
		Groups: []Group{{
			Name:  "SYNC",
			Match: func(in Info) bool { return in.Cat == CatSync },
		}},
	}
}

// ByCategory splits instructions by behavioural category.
func ByCategory() Taxonomy {
	groups := make([]Group, 0, int(numCategory))
	for c := Category(0); c < numCategory; c++ {
		cat := c
		groups = append(groups, Group{
			Name:  cat.String(),
			Match: func(in Info) bool { return in.Cat == cat },
		})
	}
	return Taxonomy{Name: "category", Groups: groups}
}

// MemoryAccess groups instructions by whether they read or write memory,
// one of the secondary attributes the analyzer derives.
func MemoryAccess() Taxonomy {
	return Taxonomy{
		Name: "memory access",
		Groups: []Group{
			{Name: "READ_WRITE", Match: func(in Info) bool { return in.ReadsMem && in.WritesMem }},
			{Name: "READ", Match: func(in Info) bool { return in.ReadsMem }},
			{Name: "WRITE", Match: func(in Info) bool { return in.WritesMem }},
			{Name: "NO_MEM", Match: func(in Info) bool { return true }},
		},
	}
}
