package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		info := infoTable[op]
		if info.Name == "" {
			t.Fatalf("opcode %d has no table entry", uint16(op))
		}
		if info.Bytes < 1 || info.Bytes > 15 {
			t.Errorf("%s: encoded length %d out of x86 range [1,15]", info.Name, info.Bytes)
		}
		if info.Latency < 1 {
			t.Errorf("%s: latency %d must be at least 1 cycle", info.Name, info.Latency)
		}
	}
}

func TestOpNamesUnique(t *testing.T) {
	seen := make(map[string]Op)
	for op := Op(1); op < numOps; op++ {
		name := op.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q defined for both %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, op := range All() {
		got, err := Parse(op.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("Parse(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	if _, err := Parse("FROBNICATE"); err == nil {
		t.Fatal("Parse of unknown mnemonic succeeded")
	}
}

func TestInvalidOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Info() on invalid opcode did not panic")
		}
	}()
	Op(0).Info()
}

func TestBranchClassification(t *testing.T) {
	branches := []Op{JMP, JZ, JNZ, JLE, JNLE, CALL, RET_NEAR, SYSCALL, SYSRET}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	nonBranches := []Op{MOV, ADD, DIVPS, VADDPS, FSQRT, NOP}
	for _, op := range nonBranches {
		if op.IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}
}

func TestLongLatency(t *testing.T) {
	long := []Op{DIV, IDIV, FDIV, FSQRT, DIVPS, SQRTPS, VDIVPS, XCHG, XADD}
	for _, op := range long {
		if !op.Info().IsLongLatency() {
			t.Errorf("%v (latency %d) should be long latency", op, op.Latency())
		}
	}
	short := []Op{MOV, ADD, ADDPS, VADDPS, JMP}
	for _, op := range short {
		if op.Info().IsLongLatency() {
			t.Errorf("%v (latency %d) should not be long latency", op, op.Latency())
		}
	}
}

func TestExtMembership(t *testing.T) {
	cases := []struct {
		op  Op
		ext Ext
	}{
		{MOV, Base}, {DIV, Base}, {FADD, X87}, {FSQRT, X87},
		{ADDPS, SSE}, {CVTSI2SD, SSE}, {VADDPS, AVX}, {VFMADD231PS, AVX},
	}
	for _, c := range cases {
		if got := c.op.Info().Ext; got != c.ext {
			t.Errorf("%v: ext = %v, want %v", c.op, got, c.ext)
		}
	}
}

func TestByExtCoversAll(t *testing.T) {
	total := 0
	for _, e := range []Ext{Base, X87, SSE, AVX} {
		ops := ByExt(e)
		total += len(ops)
		for _, op := range ops {
			if op.Info().Ext != e {
				t.Errorf("ByExt(%v) returned %v of ext %v", e, op, op.Info().Ext)
			}
		}
	}
	if total != NumOps {
		t.Errorf("extension partitions cover %d ops, want %d", total, NumOps)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := All()
	code := Encode(ops)
	decoded, err := Decode(code, 0x400000)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(decoded) != len(ops) {
		t.Fatalf("decoded %d instructions, want %d", len(decoded), len(ops))
	}
	addr := uint64(0x400000)
	for i, d := range decoded {
		if d.Op != ops[i] {
			t.Errorf("inst %d: decoded %v, want %v", i, d.Op, ops[i])
		}
		if d.Addr != addr {
			t.Errorf("inst %d: addr %#x, want %#x", i, d.Addr, addr)
		}
		if d.Len != ops[i].Bytes() {
			t.Errorf("inst %d (%v): len %d, want %d", i, ops[i], d.Len, ops[i].Bytes())
		}
		addr += uint64(d.Len)
	}
}

func TestEncodeLengthMatchesTable(t *testing.T) {
	for _, op := range All() {
		enc := AppendEncode(nil, op)
		if len(enc) != op.Bytes() {
			t.Errorf("%v: encoded %d bytes, table says %d", op, len(enc), op.Bytes())
		}
	}
}

// Property: any random opcode sequence round-trips through the codec.
func TestQuickCodecRoundTrip(t *testing.T) {
	ops := All()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := make([]Op, int(n)%64+1)
		for i := range seq {
			seq[i] = ops[rng.Intn(len(ops))]
		}
		code := Encode(seq)
		dec, err := Decode(code, 0x1000)
		if err != nil || len(dec) != len(seq) {
			return false
		}
		for i := range seq {
			if dec[i].Op != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		code []byte
	}{
		{"empty", nil},
		{"unknown leading byte", []byte{0x05}},
		{"truncated wide", []byte{wideMarker, 0x01}},
		{"invalid wide opcode", []byte{wideMarker, 0xFF, 0xFF, padByte}},
	}
	for _, c := range cases {
		if _, err := DecodeOne(c.code, 0); err == nil {
			t.Errorf("%s: DecodeOne succeeded, want error", c.name)
		}
	}
}

func TestTaxonomyByExtension(t *testing.T) {
	tax := ByExtension()
	if got := tax.Classify(VADDPS); got != "AVX" {
		t.Errorf("VADDPS classified as %q, want AVX", got)
	}
	if got := tax.Classify(MOV); got != "BASE" {
		t.Errorf("MOV classified as %q, want BASE", got)
	}
}

func TestTaxonomyByPacking(t *testing.T) {
	tax := ByPacking()
	cases := map[Op]string{
		VADDPS: "PACKED", ADDSS: "SCALAR", MOV: "NONE", VZEROUPPER: "NONE",
	}
	for op, want := range cases {
		if got := tax.Classify(op); got != want {
			t.Errorf("%v classified as %q, want %q", op, got, want)
		}
	}
}

func TestTaxonomyLongLatencyAndSync(t *testing.T) {
	ll := LongLatency()
	if got := ll.Classify(DIV); got != "LONG_LATENCY" {
		t.Errorf("DIV: %q", got)
	}
	if got := ll.Classify(ADD); got != "OTHER" {
		t.Errorf("ADD: %q", got)
	}
	sync := Synchronization()
	for _, op := range []Op{XADD, XCHG, CMPXCHG, LOCK_ADD} {
		if got := sync.Classify(op); got != "SYNC" {
			t.Errorf("%v: %q, want SYNC", op, got)
		}
	}
}

func TestTaxonomyBuckets(t *testing.T) {
	tax := ByPacking()
	buckets := tax.Buckets()
	if len(buckets) != 4 || buckets[len(buckets)-1] != "OTHER" {
		t.Errorf("Buckets() = %v, want 3 groups plus OTHER", buckets)
	}
}

func TestMemoryAccessTaxonomy(t *testing.T) {
	tax := MemoryAccess()
	if got := tax.Classify(XCHG); got != "READ_WRITE" {
		t.Errorf("XCHG: %q", got)
	}
	if got := tax.Classify(POP); got != "READ" {
		t.Errorf("POP: %q", got)
	}
	if got := tax.Classify(PUSH); got != "WRITE" {
		t.Errorf("PUSH: %q", got)
	}
	if got := tax.Classify(ADD); got != "NO_MEM" {
		t.Errorf("ADD: %q", got)
	}
}

func TestStringersNonEmpty(t *testing.T) {
	for e := Ext(0); e < numExt; e++ {
		if e.String() == "" {
			t.Errorf("Ext(%d) has empty String()", e)
		}
	}
	for c := Category(0); c < numCategory; c++ {
		if c.String() == "" {
			t.Errorf("Category(%d) has empty String()", c)
		}
	}
	for p := NoPacking; p <= Packed; p++ {
		if p.String() == "" {
			t.Errorf("Packing(%d) has empty String()", p)
		}
	}
}
