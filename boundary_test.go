package hbbp

// Import-boundary tests freeze two architectural rules:
//
//  1. Commands and examples consume only the public façade — the root
//     hbbp package — never internal/ packages directly. The façade is
//     the library's contract; anything the entry points need and
//     cannot get is a façade gap, not a license to reach inside.
//  2. The serialization-format packages — internal/perffile,
//     internal/profstore and internal/fleetwire — import only the
//     standard library (the DESIGN.md self-containment invariant), so
//     the file formats and the wire protocol can be lifted into
//     external tooling unchanged. internal/tsstore gets the same
//     treatment with one named exception: it may import profstore,
//     whose codec its window files reuse — lifting tsstore means
//     lifting the pair, still dependency-free.
//  3. internal/telemetry sits below everything: it imports only the
//     standard library (so instrumenting a package never drags in new
//     dependencies), it may be imported by the instrumented internals,
//     and nothing it imports can ever point back up. profstore and
//     tsstore keep their lift-out property with telemetry as a second
//     named exception — telemetry is itself stdlib-only, so the lifted
//     set stays dependency-free. fleetwire stays pure: the wire codec
//     is not instrumented; its callers time around it.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// imports parses one Go file and returns its import paths.
func imports(t *testing.T, path string) []string {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	var out []string
	for _, imp := range f.Imports {
		out = append(out, strings.Trim(imp.Path.Value, `"`))
	}
	return out
}

// goFilesUnder walks a directory tree and returns every .go file.
func goFilesUnder(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files under %s; boundary test is vacuous", root)
	}
	return files
}

// TestCommandsAndExamplesUseOnlyTheFacade asserts no file under cmd/
// or examples/ imports an internal package.
func TestCommandsAndExamplesUseOnlyTheFacade(t *testing.T) {
	for _, root := range []string{"cmd", "examples"} {
		for _, file := range goFilesUnder(t, root) {
			for _, imp := range imports(t, file) {
				if strings.HasPrefix(imp, "hbbp/internal") {
					t.Errorf("%s imports %q; entry points must consume the public hbbp façade only", file, imp)
				}
			}
		}
	}
}

// TestFormatPackagesImportOnlyStdlib asserts the serialization-format
// packages (tests included) depend on nothing but the standard
// library: no module packages, no third-party modules. perffile is
// the raw-collection format, profstore the fleet profile store, and
// fleetwire the ingest wire protocol (frames carry stored profiles as
// opaque bytes precisely so the protocol stays liftable) — the same
// lift-out rule applies to all three.
func TestFormatPackagesImportOnlyStdlib(t *testing.T) {
	// allowed maps a package to module-internal imports it may use
	// beyond the stdlib; absent means none. telemetry is stdlib-only by
	// rule 3, so allowing it does not compromise the lift-out property.
	allowed := map[string]map[string]bool{
		"tsstore": {
			"hbbp/internal/profstore": true,
			"hbbp/internal/telemetry": true,
		},
		"profstore": {"hbbp/internal/telemetry": true},
	}
	for _, pkg := range []string{"perffile", "profstore", "fleetwire", "tsstore", "telemetry"} {
		for _, file := range goFilesUnder(t, filepath.Join("internal", pkg)) {
			for _, imp := range imports(t, file) {
				if strings.HasPrefix(imp, "hbbp") {
					if !allowed[pkg][imp] {
						t.Errorf("%s imports %q; %s must stay self-contained", file, imp, pkg)
					}
					continue
				}
				// Standard-library import paths have no dot in their first
				// element (golang.org/x/..., github.com/... do).
				if first, _, _ := strings.Cut(imp, "/"); strings.Contains(first, ".") {
					t.Errorf("%s imports non-stdlib package %q", file, imp)
				}
			}
		}
	}
}
