package hbbp

import (
	"fmt"
	"io"

	"hbbp/internal/core"
	"hbbp/internal/isa"
	"hbbp/internal/pivot"
	"hbbp/internal/profstore"
)

// The fleet layer: a Session produces one Profile per run; this file
// is how thousands of them become one queryable fleet view. Capture a
// run into a mergeable StoredProfile, persist it with SaveProfile /
// LoadProfile, merge any number of them offline (MergeProfiles) or
// online under concurrent ingestion (Aggregator), and compare fleet
// mixes with DiffProfiles.

// StoredProfile is the mergeable, serializable form of a profiling
// run: integer retirement mass keyed by stable identities (blocks by
// unit/module/function/address, instruction mass by mnemonic and
// ring), so profiles captured by different sessions, machines or days
// merge meaningfully — and bit-identically in any merge order.
type StoredProfile = profstore.Profile

// StoredBlock is one basic block's merged execution mass in a
// StoredProfile.
type StoredBlock = profstore.Block

// OpMass is the merged retirement mass of one mnemonic in one ring.
type OpMass = profstore.OpMass

// WorkloadWeight records how many profiled runs of one workload a
// StoredProfile aggregates — the merge's weight accounting.
type WorkloadWeight = profstore.WorkloadWeight

// ProfileDiff reports what changed between two fleet mixes.
type ProfileDiff = profstore.DiffReport

// OpDelta is one mnemonic's movement in a ProfileDiff.
type OpDelta = profstore.OpDelta

// DefaultDiffThreshold is the regression threshold [DiffProfiles]
// applies when none is given: one percentage point of share movement.
const DefaultDiffThreshold = profstore.DefaultDiffThreshold

// CaptureProfile quantizes one run's hybrid per-block counts into a
// mergeable stored profile representing a single run of unit
// (conventionally the workload name; it scopes block identities like
// a build ID).
func CaptureProfile(prof *Profile, unit string) (*StoredProfile, error) {
	if prof == nil {
		return nil, fmt.Errorf("hbbp: CaptureProfile of a nil profile")
	}
	return core.Capture(prof, unit), nil
}

// SaveProfile writes a stored profile to w in the versioned binary
// profile-store format (magic "HBBPROF1"). Equal profiles serialize
// to identical bytes.
func SaveProfile(w io.Writer, sp *StoredProfile) error {
	return profstore.Save(w, sp)
}

// LoadProfile reads one stored profile written by [SaveProfile].
// Malformed streams return errors matching [ErrProfileMagic],
// [ErrProfileTruncated] or [ErrProfileVersion] under errors.Is.
func LoadProfile(r io.Reader) (*StoredProfile, error) {
	return profstore.Load(r)
}

// LoadProfileBytes decodes one stored profile from an in-memory
// buffer — [LoadProfile] without the reader indirection. When the
// whole file is already in memory (os.ReadFile, a wire frame), this
// path decodes through the interned kernel without an intermediate
// copy.
func LoadProfileBytes(data []byte) (*StoredProfile, error) {
	return profstore.LoadBytes(data)
}

// MergeProfiles combines any number of stored profiles into one.
// Mass accounting is integer addition over canonical keys, so the
// result is bit-identical in any argument order or grouping; merging
// a single profile returns an equal profile, and merging none returns
// the empty profile. Nil entries are ignored.
func MergeProfiles(profiles ...*StoredProfile) *StoredProfile {
	return profstore.Merge(profiles...)
}

// DiffProfiles compares two fleet mixes op by op, producing per-op
// mass and share deltas sorted by movement, with entries at or above
// threshold (a share fraction; 0 selects [DefaultDiffThreshold])
// flagged as regressions. Shares are computed against each profile's
// own total mass, so fleets of different sizes compare directly.
func DiffProfiles(before, after *StoredProfile, threshold float64) *ProfileDiff {
	return profstore.Diff(before, after, profstore.DiffOptions{Threshold: threshold})
}

// Aggregator merges profiles online: any number of goroutines —
// typically concurrent [Session.Profile] runs — ingest results while
// readers take consistent snapshots. Internally the mass lives in
// lock-striped shards, so ingestion scales with cores; a snapshot
// reflects every ingest that returned before the call and never a
// partial one, and is bit-identical to [MergeProfiles] over the same
// profiles at any ingestion parallelism. Construct with
// [NewAggregator]; the zero value is not usable.
type Aggregator struct {
	inner *profstore.Aggregator
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{inner: profstore.NewAggregator()}
}

// Add captures a live profile (as one run of unit) and folds it into
// the aggregator. Safe for concurrent use.
func (a *Aggregator) Add(prof *Profile, unit string) error {
	sp, err := CaptureProfile(prof, unit)
	if err != nil {
		return err
	}
	a.inner.Ingest(sp)
	return nil
}

// Merge folds an already-captured stored profile into the aggregator
// — e.g. one loaded from another machine's [SaveProfile] output. Safe
// for concurrent use; nil profiles are ignored.
func (a *Aggregator) Merge(sp *StoredProfile) {
	a.inner.Ingest(sp)
}

// Snapshot returns the merged view of everything ingested so far
// without stopping ingestion: the aggregate is copied out under a
// brief exclusive section and canonicalized outside it.
func (a *Aggregator) Snapshot() *StoredProfile {
	return a.inner.Snapshot()
}

// StoredMix converts a stored profile's per-op mass into a [Mix]
// under the scope filter, for scoring fleet mixes with
// [AvgWeightedError] or feeding mix-level analyses. Mnemonics this
// build's ISA table does not know (a stored profile may come from a
// newer build) are skipped.
func StoredMix(sp *StoredProfile, scope Scope) Mix {
	mix := make(Mix)
	for _, o := range sp.Ops {
		if !scopeAdmitsRing(scope, o.Ring) {
			continue
		}
		op, err := isa.Parse(o.Mnemonic)
		if err != nil {
			continue
		}
		mix[op] += float64(o.Mass)
	}
	return mix
}

// StoredPivot explodes a stored profile's op masses into a pivot
// table with the static instruction attributes attached — mnemonic,
// ring, ISA extension, packing, category and memory behaviour — so
// the mix views ([TopMnemonics], [ExtBreakdown], [PackingView],
// [RingBreakdown]) work on fleet mixes exactly as they do on live
// profiles. Unknown mnemonics keep their name with blank static
// attributes rather than disappearing from the totals. Stored op
// masses carry no code-location dimensions; for location views
// ([TopFunctions] and friends) use [StoredBlockPivot].
func StoredPivot(sp *StoredProfile) *PivotTable {
	tab := pivot.New()
	memTax := isa.MemoryAccess()
	for _, o := range sp.Ops {
		ring := RingUser
		if o.Ring == profstore.RingKernel {
			ring = RingKernel
		}
		dims := map[string]string{
			DimMnemonic: o.Mnemonic,
			DimRing:     ring.String(),
			DimExt:      "",
			DimPacking:  "",
			DimCategory: "",
			DimMemory:   "",
		}
		if op, err := isa.Parse(o.Mnemonic); err == nil {
			info := op.Info()
			dims[DimExt] = info.Ext.String()
			dims[DimPacking] = info.Packing.String()
			dims[DimCategory] = info.Cat.String()
			dims[DimMemory] = memTax.Classify(op)
		}
		tab.Add(dims, float64(o.Mass))
	}
	return tab
}

// DimUnit is the pivot dimension naming the capture unit (workload /
// build) a stored block came from, emitted by [StoredBlockPivot]
// alongside the standard location dimensions.
const DimUnit = "unit"

// StoredBlockPivot explodes a stored profile's block masses into a
// pivot table keyed by code location — [DimUnit], [DimModule],
// [DimFunction], [DimBlock], [DimRing] — with retired-instruction
// mass (count times length) as the value, so the location views
// ([TopFunctions], [RingBreakdown], custom queries) work at fleet
// scale. The mnemonic-attribute dimensions live on [StoredPivot]; the
// stored format keeps the two mass breakdowns separate.
func StoredBlockPivot(sp *StoredProfile) *PivotTable {
	tab := pivot.New()
	for i := range sp.Blocks {
		b := &sp.Blocks[i]
		ring := RingUser
		if b.Ring == profstore.RingKernel {
			ring = RingKernel
		}
		tab.Add(map[string]string{
			DimUnit:     b.Unit,
			DimModule:   b.Module,
			DimFunction: b.Function,
			DimBlock:    fmt.Sprintf("%s@%#x", b.Function, b.Addr),
			DimRing:     ring.String(),
		}, float64(b.Mass()))
	}
	return tab
}

// scopeAdmitsRing filters a stored ring by view scope.
func scopeAdmitsRing(s Scope, ring uint8) bool {
	switch s {
	case ScopeUser:
		return ring == profstore.RingUser
	case ScopeKernel:
		return ring == profstore.RingKernel
	}
	return true
}
