package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: hbbp/internal/tsstore
BenchmarkSeriesWindow-8   	    6446	    184483 ns/op	  170722 B/op	      46 allocs/op
BenchmarkSeriesAppend     	  136424	      8810 ns/op
BenchmarkWireIngest1Agent 	  203931	     11700 ns/op	   8.21 MB/s	     544 B/op	      17 allocs/op
PASS
`
	got, err := parseBenchLines(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []result{
		{"BenchmarkSeriesWindow", 184483},
		{"BenchmarkSeriesAppend", 8810},
		{"BenchmarkWireIngest1Agent", 11700},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRunVerdicts(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks": [
		{"name": "BenchmarkFast", "ns_per_op": 1000},
		{"name": "BenchmarkSlow", "ns_per_op": 1000}
	]}`), 0o666); err != nil {
		t.Fatal(err)
	}

	// Within the limit: ratio 5x passes at max 10x.
	var out strings.Builder
	code := run(baseline, 10, strings.NewReader(
		"BenchmarkFast-4 10 5000 ns/op\n"), &out)
	if code != 0 {
		t.Fatalf("within-limit run exited %d:\n%s", code, out.String())
	}

	// Past the limit: ratio 20x fails.
	out.Reset()
	code = run(baseline, 10, strings.NewReader(
		"BenchmarkSlow-4 10 20000 ns/op\n"), &out)
	if code != 1 {
		t.Fatalf("regressed run exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("no FAIL verdict in output:\n%s", out.String())
	}

	// Nothing matched: the guard must not silently pass.
	out.Reset()
	code = run(baseline, 10, strings.NewReader(
		"BenchmarkRenamed-4 10 100 ns/op\n"), &out)
	if code != 2 {
		t.Fatalf("unmatched run exited %d, want 2:\n%s", code, out.String())
	}
}
