// Command benchguard compares `go test -bench` output read on stdin
// against the repo's recorded baseline (BENCH_baseline.json) and fails
// when any benchmark regressed past a ratio threshold.
//
// Usage:
//
//	go test -run NONE -bench X ./pkg/ | go run ./scripts/benchguard -baseline BENCH_baseline.json
//
// The guard is deliberately loose: CI machines differ from the machine
// the baseline was recorded on, and 1x-5x iteration counts are noisy,
// so only an order-of-magnitude regression (default -max-ratio 10)
// fails the build. It is a tripwire for "the fast path stopped being
// taken", not a performance test. Benchmarks missing from the baseline
// are reported and skipped; a run that matches nothing fails, so a
// renamed benchmark cannot silently disarm the guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baselineFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// result is one parsed benchmark line from `go test -bench` output.
type result struct {
	name    string
	nsPerOp float64
}

// parseBenchLines extracts benchmark results from go test output.
// Lines look like:
//
//	BenchmarkSeriesWindow-8   6446   184483 ns/op   170722 B/op   46 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so names match the baseline on
// any machine.
func parseBenchLines(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Find the "ns/op" unit; its value is the preceding field.
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			ns, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad ns/op value on line %q", sc.Text())
			}
			out = append(out, result{name: name, nsPerOp: ns})
			break
		}
	}
	return out, sc.Err()
}

func run(baselinePath string, maxRatio float64, in io.Reader, out io.Writer) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(out, "benchguard: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(out, "benchguard: %s: %v\n", baselinePath, err)
		return 2
	}
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b.NsPerOp
	}

	results, err := parseBenchLines(in)
	if err != nil {
		fmt.Fprintf(out, "benchguard: %v\n", err)
		return 2
	}

	compared, failed := 0, 0
	for _, r := range results {
		want, ok := baseline[r.name]
		if !ok || want <= 0 {
			fmt.Fprintf(out, "benchguard: %-40s %12.0f ns/op  (not in baseline, skipped)\n", r.name, r.nsPerOp)
			continue
		}
		compared++
		ratio := r.nsPerOp / want
		verdict := "ok"
		if ratio > maxRatio {
			verdict = fmt.Sprintf("FAIL (limit %.1fx)", maxRatio)
			failed++
		}
		fmt.Fprintf(out, "benchguard: %-40s %12.0f ns/op  baseline %12.0f  ratio %6.2fx  %s\n",
			r.name, r.nsPerOp, want, ratio, verdict)
	}
	if compared == 0 {
		fmt.Fprintf(out, "benchguard: no benchmark in the input matched the baseline — wrong -bench pattern or renamed benchmarks?\n")
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(out, "benchguard: %d of %d benchmarks regressed past %.1fx\n", failed, compared, maxRatio)
		return 1
	}
	fmt.Fprintf(out, "benchguard: %d benchmarks within %.1fx of baseline\n", compared, maxRatio)
	return 0
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
	maxRatio := flag.Float64("max-ratio", 10, "fail when measured ns/op exceeds baseline by this factor")
	flag.Parse()
	os.Exit(run(*baselinePath, *maxRatio, os.Stdin, os.Stderr))
}
