package hbbp

import (
	"context"
	"net"

	"hbbp/internal/fleetserver"
	"hbbp/internal/fleetwire"
)

// The fleet ingest layer: fleet.go turns runs into mergeable stored
// profiles; this file moves them across machines. Serve runs an
// ingest server that merges profiles into per-tenant/epoch
// aggregators over a length-prefixed, CRC-checked wire protocol; Dial
// returns the retrying client agents deliver with. The tier's
// contract is exact accounting under failure: a profile is merged
// exactly once if and only if its sender was told so, and every
// refusal — overload shed, rejection, corrupt frame — lands in a
// counter (see FleetServerStats). The fault-injection surface
// (Faults, NewFlakyConn, NewFlakyListener) is exported so callers can
// rehearse their own failure handling the way this package's chaos
// suite does.

// FleetServer ingests stored profiles over the wire and merges them
// into per-tenant, per-epoch aggregators with exact drop accounting.
// Construct with [Serve].
type FleetServer = fleetserver.Server

// FleetServerConfig parameterizes [Serve]. The zero value is usable.
type FleetServerConfig = fleetserver.Config

// FleetServerStats is a point-in-time view of a server's accounting:
// connection counts plus one ledger per tenant.
type FleetServerStats = fleetserver.Stats

// FleetTenantStats is one tenant's ingest ledger — merges, duplicate
// re-sends, and every class of refused profile, each counted exactly
// where it happened.
type FleetTenantStats = fleetserver.TenantStats

// FleetClient delivers stored profiles to a [FleetServer] with
// retries, reconnection and exactly-once delivery — one per round
// trip ([fleetserver.Client.Send]) or many
// ([fleetserver.Client.SendBatch]). Construct with [Dial].
type FleetClient = fleetserver.Client

// FleetBatchItem is one profile in a [FleetClient.SendBatchBytes]
// batch: an already-serialized stored profile bound for one epoch.
type FleetBatchItem = fleetserver.BatchItem

// FleetClientConfig parameterizes [Dial]. Tenant and Agent are
// required; Agent is the stable identity the server's exactly-once
// ledger is keyed by.
type FleetClientConfig = fleetserver.ClientConfig

// FleetClientStats counts what one client delivered and observed.
type FleetClientStats = fleetserver.ClientStats

// Faults configures injected transport misbehavior — partial writes,
// bit corruption, resets, stalls, deterministic cuts — for
// [NewFlakyConn] and [NewFlakyListener]. The zero value injects
// nothing.
type Faults = fleetwire.Faults

// Serve starts a fleet ingest server on ln and returns immediately.
// The server owns the listener; stop it with
// [FleetServer.Shutdown] (drains admitted profiles) or
// [FleetServer.Close].
func Serve(ln net.Listener, cfg FleetServerConfig) *FleetServer {
	return fleetserver.Serve(ln, cfg)
}

// Dial connects a fleet agent to a [FleetServer], retrying transient
// failures under the client's backoff policy. The returned client
// re-dials transparently when its connection drops and resumes its
// delivery ledger from the server's handshake, so a profile whose ack
// was lost to a reset is never merged twice. Failures classify under
// errors.Is against [ErrOverloaded], [ErrProfileRejected],
// [ErrFleetClientClosed] and the wire sentinels.
func Dial(ctx context.Context, addr string, cfg FleetClientConfig) (*FleetClient, error) {
	return fleetserver.Dial(ctx, addr, cfg)
}

// NewFlakyConn wraps conn with injected faults — the transport-chaos
// harness used by this package's own tests, exported so integrations
// can rehearse failure handling against real misbehavior instead of
// mocks. Injected failures carry [ErrInjectedFault] in their chain.
func NewFlakyConn(conn net.Conn, f Faults) net.Conn {
	return fleetwire.NewFlakyConn(conn, f)
}

// NewFlakyListener wraps ln so every accepted connection misbehaves
// with a distinct deterministic seed derived from f.Seed — the
// server-side mirror of [NewFlakyConn].
func NewFlakyListener(ln net.Listener, f Faults) net.Listener {
	return fleetwire.NewFlakyListener(ln, f)
}
