package hbbp

// Cancellation tests: every façade entry point takes a context, and a
// cancelled context must stop collection runs, replay passes and the
// experiment worker pool promptly — without ever perturbing runs that
// complete (the parity tests all pass a live context).

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// promptly runs fn and fails the test if it takes longer than the
// bound — generous enough for loaded CI machines, far below the
// uncancelled runtime of the work being cancelled.
func promptly(t *testing.T, what string, bound time.Duration, fn func() error) error {
	t.Helper()
	start := time.Now()
	err := fn()
	if elapsed := time.Since(start); elapsed > bound {
		t.Errorf("%s took %v after cancellation (bound %v)", what, elapsed, bound)
	}
	return err
}

func TestProfileObservesCancellation(t *testing.T) {
	// A workload long enough that an uncancelled run takes many
	// seconds: cancellation mid-run must cut it to milliseconds.
	w := testWorkload(t, "test40")
	long := *w
	long.Repeat = w.Repeat * 100

	s, err := New(WithSeed(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = promptly(t, "Profile", 10*time.Second, func() error {
		_, err := s.Profile(ctx, &long)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Profile returned %v, want errors.Is(context.Canceled)", err)
	}

	// An already-cancelled context stops the run before any block
	// retires.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if _, err := s.Profile(done, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Profile returned %v, want errors.Is(context.Canceled)", err)
	}
}

func TestReplayObservesCancellation(t *testing.T) {
	w := testWorkload(t, "test40").Scaled(0.2)
	var raw bytes.Buffer
	s, err := New(WithSeed(1), WithRawOutput(&raw))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Profile(context.Background(), w); err != nil {
		t.Fatalf("Profile: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Replay(ctx, w, bytes.NewReader(raw.Bytes())); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Replay returned %v, want errors.Is(context.Canceled)", err)
	}
}

func TestTrainObservesCancellation(t *testing.T) {
	s, err := New(WithSeed(1), WithFast(0.1), WithParallelism(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Fast-mode training can finish in milliseconds, so a timed cancel
	// races; a pre-cancelled context deterministically exercises the
	// worker pool's refusal to dispatch corpus runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = promptly(t, "Train", 10*time.Second, func() error {
		_, trainErr := s.Train(ctx)
		return trainErr
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Train returned %v, want errors.Is(context.Canceled)", err)
	}
	// A failed training pass must not install a model.
	if s.currentModel().Tree != nil {
		t.Error("cancelled Train installed a model on the session")
	}
}

func TestExperimentsObserveCancellation(t *testing.T) {
	s, err := New(WithSeed(1), WithFast(0.1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Mid-run: the parallel harness (worker pool + in-flight
	// collections) must stop promptly.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = promptly(t, "RunAllExperiments", 15*time.Second, func() error {
		return s.RunAllExperiments(ctx)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunAllExperiments returned %v, want errors.Is(context.Canceled)", err)
	}

	// Pre-cancelled: even a static table refuses to run.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := s.RunExperiment(done, "table2"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunExperiment returned %v, want errors.Is(context.Canceled)", err)
	}
}

// TestBatchedExperimentsObserveCancellation covers the planner path:
// a batched RunExperiments call cancelled mid-run must stop the shared
// collection phase promptly, and renders already written to the output
// stay untouched — output is a prefix of the uncancelled batch.
func TestBatchedExperimentsObserveCancellation(t *testing.T) {
	var want bytes.Buffer
	ref, err := New(WithSeed(1), WithFast(0.1), WithExperimentOutput(&want))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batch := []string{"table2", "table4", "table1", "figure2"}
	if _, err := ref.RunExperiments(context.Background(), batch...); err != nil {
		t.Fatalf("reference RunExperiments: %v", err)
	}

	var got bytes.Buffer
	s, err := New(WithSeed(1), WithFast(0.1), WithExperimentOutput(&got))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = promptly(t, "RunExperiments", 15*time.Second, func() error {
		_, runErr := s.RunExperiments(ctx, batch...)
		return runErr
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunExperiments returned %v, want errors.Is(context.Canceled)", err)
	}
	if !bytes.HasPrefix(want.Bytes(), got.Bytes()) {
		t.Errorf("cancelled batch output is not a prefix of the uncancelled batch:\ngot:\n%s", got.String())
	}

	// Pre-cancelled: planning fails closed before any collection, and
	// unknown names are still rejected first.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if _, err := s.RunExperiments(done, "table2", "figure2"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunExperiments returned %v, want errors.Is(context.Canceled)", err)
	}
	if _, err := s.RunExperiments(done, "table2", "nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("pre-cancelled unknown name returned %v, want errors.Is(ErrUnknownExperiment)", err)
	}
}

func TestUnknownExperimentIsTyped(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = s.RunExperiment(context.Background(), "table99")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown experiment returned %v, want errors.Is(ErrUnknownExperiment)", err)
	}
}

// TestReplaySurfacesPerffileSentinels asserts corrupted replay inputs
// classify through the façade's re-exported sentinels with errors.Is —
// callers never need the internal perffile package.
func TestReplaySurfacesPerffileSentinels(t *testing.T) {
	w := testWorkload(t, "test40").Scaled(0.1)
	var raw bytes.Buffer
	s, err := New(WithSeed(1), WithRawOutput(&raw))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Profile(context.Background(), w); err != nil {
		t.Fatalf("Profile: %v", err)
	}
	ctx := context.Background()

	notAPerffile := []byte("GARBAGE!not a collection stream")
	if _, err := s.Replay(ctx, w, bytes.NewReader(notAPerffile)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage stream returned %v, want errors.Is(ErrBadMagic)", err)
	}

	cut := raw.Bytes()[:raw.Len()-3]
	if _, err := s.Replay(ctx, w, bytes.NewReader(cut)); !errors.Is(err, ErrTruncatedRecord) {
		t.Errorf("truncated stream returned %v, want errors.Is(ErrTruncatedRecord)", err)
	}

	futuristic := append([]byte{}, raw.Bytes()...)
	futuristic[8], futuristic[9], futuristic[10], futuristic[11] = 99, 0, 0, 0
	if _, err := s.Replay(ctx, w, bytes.NewReader(futuristic)); !errors.Is(err, ErrUnsupportedVersion) {
		t.Errorf("future-version stream returned %v, want errors.Is(ErrUnsupportedVersion)", err)
	}
}
