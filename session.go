package hbbp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/harness"
)

// Session is the library's entry point: a fixed configuration plus an
// active profiling model, usable for any number of runs. Construct one
// with [New]; the zero value is not usable.
//
// A Session is safe for concurrent use — [Session.Profile] calls may
// run in parallel (each run owns its machine and PMU state) — with two
// caveats. [Session.Train] installs the learned model for subsequent
// calls, so profiles racing with a Train may use either model. And the
// session-level option targets are shared across runs: a [WithRawOutput]
// writer receives the interleaved streams of concurrent runs (useless
// for replay — serialize profiles, or give each run its own session),
// and [WithSinks] implementations observe concurrent Sample calls and
// must be safe for that themselves.
type Session struct {
	cfg config

	mu    sync.Mutex
	model *Model
	// expModel and expSuite cache the two expensive shared
	// computations of the experiment harness — the corpus-trained
	// model and the SPEC-suite evaluations: the harness produces them
	// on first need, the session harvests them, and later runner
	// invocations skip the collections. expModel is kept separate
	// from model so running an experiment never silently changes what
	// Profile uses.
	expModel *Model
	expSuite []*harness.WorkloadEval
}

// New builds a Session from functional options. Defaults: seed 1, all
// cores, each workload's own runtime class, full-fidelity runs, the
// shipped default model, no sinks, no raw output.
func New(opts ...Option) (*Session, error) {
	cfg := config{seed: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return &Session{cfg: cfg, model: cfg.model}, nil
}

// currentModel resolves the active model: installed by option or
// Train, else the shipped default rule.
func (s *Session) currentModel() *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.model != nil {
		return s.model
	}
	return core.DefaultModel()
}

// coreOptions resolves the session configuration and a workload into
// the internal options structs — the single place the public options
// surface maps onto the internal plumbing.
func (s *Session) coreOptions(ctx context.Context, w *Workload) core.Options {
	class := w.Class
	if s.cfg.classSet {
		class = s.cfg.class
	}
	return core.Options{
		Collector: collector.Options{
			Class:          class,
			Scale:          w.Scale,
			Seed:           s.cfg.seed,
			Repeat:         w.Repeat,
			Sinks:          s.cfg.sinks,
			RawOut:         s.cfg.rawOut,
			PerInstruction: s.cfg.perInstruction,
			Layout:         w.Layout,
			Context:        ctx,
		},
		KernelLivePatched: true,
	}
}

// Profile runs one workload under the simulated PMU: one collection
// pass, both estimators, bias detection, then the per-block hybrid
// choice with the session's model. Extra listeners observe the
// identical execution (the evaluation attaches the [Instrumenter]
// reference this way). Cancelling ctx aborts the run promptly with an
// error wrapping ctx.Err().
func (s *Session) Profile(ctx context.Context, w *Workload, extra ...Listener) (*Profile, error) {
	if w == nil {
		return nil, fmt.Errorf("hbbp: Profile of a nil workload")
	}
	if s.cfg.workloadScale > 0 && s.cfg.workloadScale < 1 {
		w = w.Scaled(s.cfg.workloadScale)
	}
	return core.Run(w.Prog, w.Entry, s.currentModel(), s.coreOptions(ctx, w), extra...)
}

// Replay re-analyzes a serialized collection stream (written earlier
// by a [WithRawOutput] session) for the given workload: records stream
// through the same sinks a live run dispatches to, then the session's
// model makes the per-block choices. The workload must be the one the
// stream was collected from — the file records samples, not
// configuration, so the program image, sampling periods and scale are
// resolved from it. Run statistics (cycles, PMI counts) are not in the
// file; the replayed profile's overhead model reports a clean factor
// of 1.
//
// Malformed streams return errors matching [ErrBadMagic],
// [ErrTruncatedRecord] or [ErrUnsupportedVersion] under errors.Is.
func (s *Session) Replay(ctx context.Context, w *Workload, r io.Reader) (*Profile, error) {
	if w == nil {
		return nil, fmt.Errorf("hbbp: Replay of a nil workload")
	}
	opts := s.coreOptions(ctx, w)
	// Collection-time retention options do not apply to a replay pass.
	opts.Collector.RawOut = nil
	return core.AnalyzeReplay(w.Prog, s.currentModel(), r, opts)
}

// Train learns the classification-tree model on the training corpus —
// the paper's Figure 1 pipeline — and installs it as the session's
// active model for subsequent Profile and Replay calls. The corpus
// runs execute on the session's worker pool; the dataset and the
// learned tree are identical at any parallelism. Cancelling ctx stops
// the corpus collection promptly.
func (s *Session) Train(ctx context.Context) (*Model, error) {
	r := s.runner(ctx)
	m, err := r.Model()
	if err != nil {
		return nil, err
	}
	s.harvest(r)
	s.mu.Lock()
	s.model = m
	s.mu.Unlock()
	return m, nil
}

// runner maps the session configuration onto an experiment harness
// bound to ctx. The harness is per call (a context binds at
// construction), but the expensive state — the corpus-trained model —
// is carried across calls through expModel and harvest.
func (s *Session) runner(ctx context.Context) *harness.Runner {
	s.mu.Lock()
	trained, suite := s.expModel, s.expSuite
	s.mu.Unlock()
	return harness.New(harness.Config{
		Out:            s.cfg.expOut,
		Fast:           s.cfg.fastFactor > 0,
		FastFactor:     s.cfg.fastFactor,
		Seed:           s.cfg.seed,
		Parallelism:    s.cfg.parallelism,
		PerInstruction: s.cfg.perInstruction,
		Ctx:            ctx,
		Model:          trained,
		Suite:          suite,
	})
}

// harvest stores the model a runner trained and the suite it
// evaluated, so the next runner skips those collections. Called after
// every runner use, whether or not the invocation as a whole
// succeeded — a successfully computed cache is valid even when a
// later table failed or was cancelled.
func (s *Session) harvest(r *harness.Runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := r.TrainedModel(); ok && s.expModel == nil {
		s.expModel = m
	}
	if evals, ok := r.EvaluatedSuite(); ok && s.expSuite == nil {
		s.expSuite = evals
	}
}

// ExperimentNames lists every regenerable experiment: the paper's
// evaluation in paper order (table1..table8, figure1..figure4), then
// the reproduction's fleet-scale profile-store experiment ("fleet").
func ExperimentNames() []string { return harness.ExperimentNames() }

// ExperimentTiming records one experiment's render wall time within a
// batched [Session.RunExperiments] call.
type ExperimentTiming struct {
	Name string
	Wall time.Duration
}

// ExperimentReport summarises a batched [Session.RunExperiments] call:
// how long the shared collection phase and each render took, and how
// many collection runs the shared plan executed versus served from the
// run cache. The rendered tables themselves go to the
// [WithExperimentOutput] writer, identically to running each
// experiment on its own.
type ExperimentReport struct {
	// Experiments holds per-experiment render timings, in request
	// order.
	Experiments []ExperimentTiming
	// CollectWall is the wall time of the shared collection phase —
	// every (workload, configuration) run the batch needs, each
	// collected exactly once.
	CollectWall time.Duration
	// RunsCollected counts collection runs the plan executed;
	// RunsReused counts requests the run cache satisfied without
	// collecting again.
	RunsCollected, RunsReused int
}

// RunExperiment regenerates one table or figure of the paper,
// rendering it to the [WithExperimentOutput] writer. Unknown names
// return an error matching [ErrUnknownExperiment]. Cancelling ctx
// stops the worker pool and in-flight collections promptly.
func (s *Session) RunExperiment(ctx context.Context, name string) error {
	_, err := s.RunExperiments(ctx, name)
	return err
}

// RunExperiments regenerates the named experiments through one shared
// collection plan: the union of required (workload, configuration)
// runs across the batch is computed up front and each is collected
// exactly once on the session's worker pool, then every experiment
// renders from the shared result set in request order. Output is
// byte-identical to running the experiments individually (a
// multi-experiment batch separates renders with a blank line, the
// [Session.RunAllExperiments] layout) at any parallelism. Unknown
// names return an error matching [ErrUnknownExperiment] before any
// collection starts. Cancelling ctx stops the worker pool and
// in-flight collections promptly; the report still accounts for the
// runs collected before the cancellation.
func (s *Session) RunExperiments(ctx context.Context, names ...string) (*ExperimentReport, error) {
	known := map[string]bool{}
	for _, n := range ExperimentNames() {
		known[n] = true
	}
	for _, name := range names {
		if !known[name] {
			return nil, fmt.Errorf("%w: %q (known: %s)",
				ErrUnknownExperiment, name, strings.Join(ExperimentNames(), ", "))
		}
	}
	r := s.runner(ctx)
	rep, err := r.RunPlan(names...)
	s.harvest(r)
	out := &ExperimentReport{}
	if rep != nil {
		out.CollectWall = rep.CollectWall
		out.RunsCollected, out.RunsReused = rep.Collected, rep.Reused
		for _, t := range rep.Renders {
			out.Experiments = append(out.Experiments, ExperimentTiming{Name: t.Name, Wall: t.Wall})
		}
	}
	return out, err
}

// RunAllExperiments regenerates every experiment in paper order
// through one shared collection plan ([Session.RunExperiments] over
// [ExperimentNames]), so every required run is collected exactly once
// across all tables and figures; the trained model also carries over
// to the session's later experiment calls.
func (s *Session) RunAllExperiments(ctx context.Context) error {
	_, err := s.RunExperiments(ctx, ExperimentNames()...)
	return err
}
