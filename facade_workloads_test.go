package hbbp

// Tests for the workload half of the façade: registry enumeration,
// custom shape-spec workloads, the build-error sentinel and the
// per-profile workload scaling option.

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestWorkloadsEnumeration pins the registry listing the façade
// exposes: sorted, described, and covering every workload family.
func TestWorkloadsEnumeration(t *testing.T) {
	infos := Workloads()
	if len(infos) < 58 {
		t.Fatalf("Workloads() returned %d entries, want >= 58", len(infos))
	}
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Workloads() not sorted: %v", names)
	}
	if !reflect.DeepEqual(names, WorkloadNames()) {
		t.Error("Workloads() and WorkloadNames() disagree")
	}
	for _, want := range []string{
		"test40", "povray", "pointer-chase", "phase-alternating",
		"megamorphic-branchy", "callgraph-deep", "trainloop01",
	} {
		if sort.SearchStrings(names, want) >= len(names) || names[sort.SearchStrings(names, want)] != want {
			t.Errorf("Workloads() missing %s", want)
		}
	}
	// Every enumerated name must build.
	for _, name := range []string{"pointer-chase", "phase-alternating", "megamorphic-branchy", "callgraph-deep"} {
		if _, err := LookupWorkload(name); err != nil {
			t.Errorf("LookupWorkload(%s): %v", name, err)
		}
	}
}

// TestLookupUnknownSuggestsList pins the unknown-name contract: the
// typed sentinel plus a message pointing at the enumeration.
func TestLookupUnknownSuggestsList(t *testing.T) {
	_, err := LookupWorkload("no-such-workload")
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("err = %v, want ErrUnknownWorkload", err)
	}
	if !strings.Contains(err.Error(), "-list") {
		t.Errorf("error %q does not suggest -list", err)
	}
}

// TestNewWorkloadCustomSpec builds a caller-authored spec through the
// façade and runs it end to end.
func TestNewWorkloadCustomSpec(t *testing.T) {
	spec := ShapeSpec{
		Name:        "facade-custom",
		Description: "caller-authored workload",
		Class:       ClassSeconds,
		Scale:       500,
		TargetInst:  100_000,
		Synth: &SynthSpec{
			Name: "facade-custom", Seed: 99, Funcs: 4,
			Profile: SynthProfile{
				MeanBlockLen: 6, DiamondFrac: 0.3, LoopFrac: 0.2, CallFrac: 0.2,
				Mix: MixProfile{Base: 0.7, SSEPacked: 0.3},
			},
			OuterTrips: 8, LeafFrac: 0.6,
		},
	}
	w, err := NewWorkload(spec)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	s, err := New(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := s.Profile(context.Background(), w)
	if err != nil {
		t.Fatalf("Profile(custom): %v", err)
	}
	if prof.Collection.Stats.Retired == 0 {
		t.Error("custom workload retired nothing")
	}
	// One-off builds stay out of the registry...
	if _, err := LookupWorkload("facade-custom"); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("NewWorkload leaked into the registry: %v", err)
	}
	// ...while RegisterWorkload makes the spec a first-class citizen.
	reg := spec
	reg.Name = "facade-registered"
	reg.Synth = &SynthSpec{Name: "facade-registered", Seed: 99, Funcs: 2, OuterTrips: 4}
	if err := RegisterWorkload(reg); err != nil {
		t.Fatalf("RegisterWorkload: %v", err)
	}
	if _, err := LookupWorkload("facade-registered"); err != nil {
		t.Errorf("registered spec not buildable: %v", err)
	}
	found := false
	for _, info := range Workloads() {
		if info.Name == "facade-registered" {
			found = true
		}
	}
	if !found {
		t.Error("registered spec not enumerated")
	}
	if err := RegisterWorkload(reg); err == nil {
		t.Error("duplicate RegisterWorkload accepted")
	}
}

// TestWorkloadBuildErrorSentinel pins the satellite contract: a
// workload whose calibration dry run cannot complete surfaces
// ErrWorkloadBuild through the façade instead of panicking.
func TestWorkloadBuildErrorSentinel(t *testing.T) {
	runaway := ShapeSpec{
		Name:        "runaway",
		Description: "spins past the calibration guard",
		Class:       ClassSeconds,
		Scale:       1,
		TargetInst:  1000,
		Synth: &SynthSpec{
			Name: "runaway", Seed: 1, Funcs: 1,
			Profile:    SynthProfile{MeanBlockLen: 8, LoopFrac: 0.8, InnerTripMin: 100, InnerTripMax: 200},
			OuterTrips: 1 << 40, // one entry invocation never finishes
		},
	}
	_, err := NewWorkload(runaway)
	if !errors.Is(err, ErrWorkloadBuild) {
		t.Fatalf("runaway spec: err = %v, want ErrWorkloadBuild", err)
	}
	// The cause stays on the unwrap chain: the retirement guard is
	// what stopped the dry run.
	if !errors.Is(err, ErrRetireLimit) {
		t.Fatalf("runaway spec: err = %v, want ErrRetireLimit on the chain", err)
	}
}

// TestWithWorkloadScale asserts the option is exactly Workload.Scaled
// applied at Profile time: same samples, same profile, bit for bit.
func TestWithWorkloadScale(t *testing.T) {
	w, err := Test40()
	if err != nil {
		t.Fatal(err)
	}

	scaled, err := New(WithSeed(5), WithWorkloadScale(0.2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.Profile(context.Background(), w)
	if err != nil {
		t.Fatalf("Profile(scaled session): %v", err)
	}

	plain, err := New(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Profile(context.Background(), w.Scaled(0.2))
	if err != nil {
		t.Fatalf("Profile(pre-scaled workload): %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Error("WithWorkloadScale profile differs from manually scaled workload")
	}
	full, err := plain.Profile(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Collection.Stats.Retired >= full.Collection.Stats.Retired {
		t.Error("scaled run did not shrink the collection")
	}

	// Out-of-range factors are rejected at New.
	for _, bad := range []float64{0, -1, 1.5} {
		if _, err := New(WithWorkloadScale(bad)); err == nil {
			t.Errorf("WithWorkloadScale(%g) accepted", bad)
		}
	}
}
