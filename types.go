package hbbp

import (
	"hbbp/internal/analyzer"
	"hbbp/internal/collector"
	"hbbp/internal/core"
	"hbbp/internal/cpu"
	"hbbp/internal/isa"
	"hbbp/internal/metrics"
	"hbbp/internal/perffile"
	"hbbp/internal/pivot"
	"hbbp/internal/program"
	"hbbp/internal/sde"
	"hbbp/internal/workloads"
)

// The stable result and configuration types of the library, re-exported
// from the internals as aliases: values returned by a Session ARE these
// types, so the façade adds no conversion layer, and the internal
// packages stay free to evolve behind it.

// Profile is a completed HBBP profiling run: the hybrid per-block
// execution counts (BBECs), the raw EBS and LBR estimates, the
// per-block source choices, the LBR bias report and the underlying
// collection result.
type Profile = core.Profile

// Model is a trained HBBP chooser: a classification tree with the
// paper's block-length threshold rule as fallback.
type Model = core.Model

// Source identifies which estimator supplies a block's BBEC.
type Source = core.Source

// Data sources, in Profile.Choices.
const (
	SourceLBR = core.SourceLBR
	SourceEBS = core.SourceEBS
)

// DefaultModel returns the shipped rule-of-thumb model — the paper's
// published outcome: blocks of 18 instructions or fewer use LBR data,
// longer blocks use EBS data. Use [Session.Train] to learn a model on
// the training corpus instead.
func DefaultModel() *Model { return core.DefaultModel() }

// CollectionResult is the raw outcome of one collection run: sample
// sets, effective periods, run statistics and the overhead model.
// Profiles carry one in Profile.Collection.
type CollectionResult = collector.Result

// Stats summarises one simulated execution (retired instructions,
// kernel share, taken branches, cycles).
type Stats = cpu.Stats

// RuntimeClass buckets workloads by expected runtime, selecting the
// sampling periods of the paper's Table 4.
type RuntimeClass = collector.RuntimeClass

// Runtime classes.
const (
	// ClassSeconds is for workloads running for seconds.
	ClassSeconds = collector.ClassSeconds
	// ClassMinuteOrTwo is for ~1-2 minute workloads.
	ClassMinuteOrTwo = collector.ClassMinuteOrTwo
	// ClassMinutes is for multi-minute workloads (SPEC).
	ClassMinutes = collector.ClassMinutes
)

// PeriodsFor returns the EBS and LBR sampling periods of the paper's
// Table 4 for a runtime class, in paper units (real retirements).
func PeriodsFor(c RuntimeClass) (ebsPeriod, lbrPeriod uint64) {
	return collector.PeriodsFor(c)
}

// Workload is a runnable benchmark: a program, its entry point and its
// execution scaling. Obtain one from [LookupWorkload], a named
// constructor such as [Test40], or compile a custom [ShapeSpec] with
// [NewWorkload].
type Workload = workloads.Workload

// ShapeSpec declaratively describes a workload purely by shape:
// block-length distribution, branch/call densities, ISA-class mix,
// runtime class, retirement scale and target volume. Built-in
// workloads are specs in a registry; callers author their own and
// compile them with [NewWorkload] or add them via [RegisterWorkload].
type ShapeSpec = workloads.ShapeSpec

// SynthSpec is the generic-generator half of a [ShapeSpec]: the
// whole-program structure (function count, call-graph depth, phase
// mixes, outer trip count) around a per-function [SynthProfile].
type SynthSpec = workloads.SynthSpec

// SynthProfile parameterises the per-function structure of a
// generated workload: block lengths, segment counts, diamond/loop/call
// densities and the instruction-class mix.
type SynthProfile = workloads.Profile

// MixProfile weights the instruction-class pools a generated workload
// draws from (scalar integer, scalar/packed SSE and AVX, x87, integer
// SIMD, and load-dominated pointer-chase traffic).
type MixProfile = workloads.MixProfile

// FitterVariant selects one of the builds of the Fitter track-fitting
// benchmark (Section VIII.C of the paper, Tables 3 and 6).
type FitterVariant = workloads.FitterVariant

// Fitter variants.
const (
	FitterX87    = workloads.FitterX87
	FitterSSE    = workloads.FitterSSE
	FitterAVX    = workloads.FitterAVX
	FitterAVXFix = workloads.FitterAVXFix
)

// Sample is one PMI capture in the collection stream. The instance
// passed to a SampleSink lives in a reused buffer and is only valid
// for the duration of the call.
type Sample = perffile.Sample

// Lost reports PMIs dropped by overflow collisions on one counter.
type Lost = perffile.Lost

// Branch is one LBR entry in a sample record.
type Branch = perffile.Branch

// SampleSink consumes PMU sample records as they are produced — by a
// live collection run or by replaying a serialized stream. Register
// sinks with [WithSinks].
type SampleSink = collector.SampleSink

// Listener observes the simulated retirement stream directly; extra
// listeners passed to [Session.Profile] see the identical execution
// the PMU measures (the evaluation attaches the instrumentation
// reference this way).
type Listener = cpu.Listener

// Instrumenter is the software-instrumentation reference (the paper's
// SDE stand-in): exact user-mode instruction counts plus the slowdown
// model behind Table 1. Create one with [NewInstrumenter] and pass it
// to [Session.Profile] as an extra listener.
type Instrumenter = sde.Instrumenter

// NewInstrumenter returns an instrumentation reference for a program.
func NewInstrumenter(p *Program) *Instrumenter { return sde.New(p) }

// Program is a static program image: modules, functions, basic blocks.
type Program = program.Program

// Function is one function of a program.
type Function = program.Function

// Module is one linked image (binary, shared object or kernel module).
type Module = program.Module

// Ring is the privilege level code executes in.
type Ring = program.Ring

// Privilege levels.
const (
	RingUser   = program.RingUser
	RingKernel = program.RingKernel
)

// Mix is a per-mnemonic execution histogram. Values are execution
// counts (possibly fractional for PMU-estimated mixes).
type Mix = metrics.Mix

// ViewOptions configure mix and pivot generation: ring scope, live vs
// static text, module and function filters.
type ViewOptions = analyzer.Options

// Scope filters which retirements contribute to a view.
type Scope = analyzer.Scope

// Scopes.
const (
	// ScopeAll covers user and kernel code.
	ScopeAll = analyzer.ScopeAll
	// ScopeUser covers ring 3 only — the visibility software
	// instrumentation is limited to.
	ScopeUser = analyzer.ScopeUser
	// ScopeKernel covers ring 0 only.
	ScopeKernel = analyzer.ScopeKernel
)

// PivotTable is an instruction-mix pivot table: one record per (block,
// mnemonic) with static attributes attached, queryable by any
// dimension combination.
type PivotTable = pivot.Table

// Query describes one pivot view (group-by dimensions, filters,
// ordering, limit).
type Query = pivot.Query

// Order controls pivot result ordering.
type Order = pivot.Order

// Orders.
const (
	// OrderByValueDesc sorts by aggregated value, largest first.
	OrderByValueDesc = pivot.OrderByValueDesc
	// OrderByKey sorts lexicographically by group keys.
	OrderByKey = pivot.OrderByKey
)

// ResultRow is one aggregated pivot output row.
type ResultRow = pivot.ResultRow

// Pivot dimension names emitted by [BuildPivot], for custom queries.
const (
	DimModule   = analyzer.DimModule
	DimFunction = analyzer.DimFunction
	DimBlock    = analyzer.DimBlock
	DimRing     = analyzer.DimRing
	DimMnemonic = analyzer.DimMnemonic
	DimExt      = analyzer.DimExt
	DimPacking  = analyzer.DimPacking
	DimCategory = analyzer.DimCategory
	DimMemory   = analyzer.DimMemory
)

// Op is one mnemonic of the synthetic ISA — the key type of a Mix.
// Use [ParseOp] to look one up by name; CALL and JMP, which analyses
// routinely test for, are exported directly.
type Op = isa.Op

// Frequently tested mnemonics.
const (
	CALL = isa.CALL
	JMP  = isa.JMP
)

// OpInfo carries an instruction's static attributes (encoding size,
// latency, ISA extension, packing, category, memory behaviour).
type OpInfo = isa.Info

// Ext is an ISA extension family (Table 6, Table 8 break mixes down
// by it).
type Ext = isa.Ext

// ISA extensions.
const (
	ExtBase = isa.Base // scalar integer x86
	ExtX87  = isa.X87  // legacy floating point stack
	ExtSSE  = isa.SSE  // 128-bit vector extension
	ExtAVX  = isa.AVX  // 256-bit vector extension
)

// Category is an instruction category.
type Category = isa.Category

// Instruction categories.
const (
	CatArith      = isa.CatArith
	CatDivide     = isa.CatDivide
	CatSqrt       = isa.CatSqrt
	CatLogic      = isa.CatLogic
	CatMove       = isa.CatMove
	CatCompare    = isa.CatCompare
	CatConvert    = isa.CatConvert
	CatCondBranch = isa.CatCondBranch
	CatJump       = isa.CatJump
	CatCall       = isa.CatCall
	CatReturn     = isa.CatReturn
	CatStack      = isa.CatStack
	CatNop        = isa.CatNop
	CatSync       = isa.CatSync
	CatOther      = isa.CatOther
)

// Decoded is one disassembled instruction.
type Decoded = isa.Decoded

// ParseOp looks a mnemonic up by name (e.g. "vaddps").
func ParseOp(name string) (Op, error) { return isa.Parse(name) }

// Disassemble decodes an instruction stream (e.g. a Module's static
// Code or LiveText image) starting at base.
func Disassemble(code []byte, base uint64) ([]Decoded, error) {
	return isa.Decode(code, base)
}
