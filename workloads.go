package hbbp

import (
	"fmt"
	"strings"

	"hbbp/internal/workloads"
)

// namedWorkloads maps the non-SPEC workload names to their
// constructors, in listing order.
var namedWorkloads = []struct {
	name  string
	build func() *Workload
}{
	{"test40", workloads.Test40},
	{"hydro-post", workloads.HydroPost},
	{"kernel-prime", workloads.KernelPrime},
	{"clforward-before", func() *Workload { return workloads.CLForward(false) }},
	{"clforward-after", func() *Workload { return workloads.CLForward(true) }},
	{"fitter-x87", func() *Workload { return workloads.Fitter(workloads.FitterX87) }},
	{"fitter-sse", func() *Workload { return workloads.Fitter(workloads.FitterSSE) }},
	{"fitter-avx", func() *Workload { return workloads.Fitter(workloads.FitterAVX) }},
	{"fitter-avxfix", func() *Workload { return workloads.Fitter(workloads.FitterAVXFix) }},
}

// WorkloadNames lists every built-in workload name accepted by
// [LookupWorkload]: the paper's case studies first, then the SPEC
// CPU2006 stand-ins.
func WorkloadNames() []string {
	names := make([]string, 0, len(namedWorkloads))
	for _, nw := range namedWorkloads {
		names = append(names, nw.name)
	}
	return append(names, workloads.SPECNames()...)
}

// LookupWorkload builds a workload by name — any SPEC CPU2006 name
// (gcc, povray, lbm, ...) or one of the case studies (test40,
// hydro-post, kernel-prime, clforward-before, clforward-after,
// fitter-x87, fitter-sse, fitter-avx, fitter-avxfix). Unknown names
// return an error matching [ErrUnknownWorkload] that lists the
// available workloads.
func LookupWorkload(name string) (*Workload, error) {
	for _, nw := range namedWorkloads {
		if nw.name == name {
			return nw.build(), nil
		}
	}
	if w := workloads.SPEC(name); w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("%w: %q (available: %s)",
		ErrUnknownWorkload, name, strings.Join(WorkloadNames(), ", "))
}

// Test40 is the Geant4-like simulation workload (short object-oriented
// methods — the hard case for plain EBS; Table 5, Figures 3 and 4).
func Test40() *Workload { return workloads.Test40() }

// HydroPost is the Hydro post-processing benchmark of Table 1.
func HydroPost() *Workload { return workloads.HydroPost() }

// KernelPrime is the synthetic user+kernel prime search of Table 7:
// the same algorithm as a user-space function and as a kernel-module
// function reached through a syscall.
func KernelPrime() *Workload { return workloads.KernelPrime() }

// CLForward is the CLForward vectorization case study of Table 8,
// before or after the vectorization fix.
func CLForward(fixed bool) *Workload { return workloads.CLForward(fixed) }

// Fitter builds one variant of the track-fitting benchmark of
// Tables 3 and 6.
func Fitter(v FitterVariant) *Workload { return workloads.Fitter(v) }

// FitterVariants lists the Fitter builds in Table 6 column order.
func FitterVariants() []FitterVariant { return workloads.FitterVariants() }

// SPECSuite builds the full SPEC-like suite in Figure 2 order.
func SPECSuite() []*Workload { return workloads.SPECSuite() }
