package hbbp

import (
	"errors"
	"fmt"

	"hbbp/internal/workloads"
)

// WorkloadInfo describes one entry of the workload registry.
type WorkloadInfo struct {
	// Name is the registry key accepted by [LookupWorkload].
	Name string
	// Class is the workload's runtime class (Table 4 periods).
	Class RuntimeClass
	// Description summarises what the workload models.
	Description string
}

// Workloads enumerates every registered workload — the paper's case
// studies, the SPEC CPU2006 stand-ins, the extra scenario families
// (pointer-chase, phase-alternating, megamorphic-branchy,
// callgraph-deep), the training corpus, and anything added with
// [RegisterWorkload] — sorted by name. Enumeration reads specs only;
// no workload is built.
func Workloads() []WorkloadInfo {
	specs := workloads.Default().Specs()
	out := make([]WorkloadInfo, len(specs))
	for i, s := range specs {
		out[i] = WorkloadInfo{Name: s.Name, Class: s.Class, Description: s.Description}
	}
	return out
}

// WorkloadNames lists every workload name accepted by
// [LookupWorkload], sorted.
func WorkloadNames() []string {
	return workloads.Default().Names()
}

// LookupWorkload builds a registered workload by name — any SPEC
// CPU2006 name (gcc, povray, lbm, ...), a case study (test40,
// hydro-post, kernel-prime, clforward-before, clforward-after,
// fitter-x87, fitter-sse, fitter-avx, fitter-avxfix), a scenario
// family (pointer-chase, phase-alternating, megamorphic-branchy,
// callgraph-deep) or a training workload (train01..., trainloop01...).
// Unknown names return an error matching [ErrUnknownWorkload]; builds
// that fail (a calibration dry run that cannot complete) match
// [ErrWorkloadBuild].
func LookupWorkload(name string) (*Workload, error) {
	w, err := workloads.Default().Build(name)
	if errors.Is(err, workloads.ErrUnknown) {
		return nil, fmt.Errorf("%w: %q (run 'hbbp -list' or call hbbp.Workloads() to enumerate the available workloads)",
			ErrUnknownWorkload, name)
	}
	if err != nil {
		return nil, err
	}
	return w, nil
}

// NewWorkload compiles a caller-authored [ShapeSpec] into a runnable
// workload without registering it. The spec's Synth shape goes through
// the same generic generator as the built-in workloads; calibration
// (TargetInst) pays its own dry run, and RepeatOf may reference any
// registered workload. Failures match [ErrWorkloadBuild].
func NewWorkload(spec ShapeSpec) (*Workload, error) {
	return workloads.Default().BuildSpec(spec)
}

// RegisterWorkload adds a caller-authored spec to the registry:
// [LookupWorkload], [Workloads] and cmd/hbbp -list see it like any
// built-in. Names must not collide with existing entries.
func RegisterWorkload(spec ShapeSpec) error {
	return workloads.Default().Register(spec)
}

// Test40 builds the Geant4-like simulation workload (short
// object-oriented methods — the hard case for plain EBS; Table 5,
// Figures 3 and 4).
func Test40() (*Workload, error) { return LookupWorkload("test40") }

// HydroPost builds the Hydro post-processing benchmark of Table 1.
func HydroPost() (*Workload, error) { return LookupWorkload("hydro-post") }

// KernelPrime builds the synthetic user+kernel prime search of
// Table 7: the same algorithm as a user-space function and as a
// kernel-module function reached through a syscall.
func KernelPrime() (*Workload, error) { return LookupWorkload("kernel-prime") }

// CLForward builds the CLForward vectorization case study of Table 8,
// before or after the vectorization fix.
func CLForward(fixed bool) (*Workload, error) {
	if fixed {
		return LookupWorkload("clforward-after")
	}
	return LookupWorkload("clforward-before")
}

// Fitter builds one variant of the track-fitting benchmark of
// Tables 3 and 6.
func Fitter(v FitterVariant) (*Workload, error) {
	return LookupWorkload(v.WorkloadName())
}

// FitterVariants lists the Fitter builds in Table 6 column order.
func FitterVariants() []FitterVariant { return workloads.FitterVariants() }

// SPECNames lists the SPEC CPU2006 stand-in names in Figure 2 suite
// order.
func SPECNames() []string { return workloads.SPECNames() }

// SPECSuite builds the full SPEC-like suite in Figure 2 order.
func SPECSuite() ([]*Workload, error) {
	names := workloads.SPECNames()
	out := make([]*Workload, len(names))
	for i, name := range names {
		w, err := LookupWorkload(name)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}
