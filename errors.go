package hbbp

import (
	"errors"

	"hbbp/internal/cpu"
	"hbbp/internal/perffile"
	"hbbp/internal/profstore"
	"hbbp/internal/workloads"
)

// Typed sentinel errors. Errors returned by the façade wrap these, so
// callers classify failures with errors.Is without depending on
// message text or internal packages.
var (
	// ErrBadMagic reports a replay stream that is not a serialized
	// collection (perffile) at all.
	ErrBadMagic = perffile.ErrBadMagic
	// ErrTruncatedRecord reports a replay stream cut mid-record.
	ErrTruncatedRecord = perffile.ErrTruncatedRecord
	// ErrUnsupportedVersion reports a replay stream written in a format
	// version this library cannot read.
	ErrUnsupportedVersion = perffile.ErrUnsupportedVersion
	// ErrRetireLimit reports a run aborted by the retirement guard
	// (Workload misconfiguration, runaway loops).
	ErrRetireLimit = cpu.ErrRetireLimit
	// ErrUnknownWorkload reports a workload name LookupWorkload does
	// not recognise.
	ErrUnknownWorkload = errors.New("hbbp: unknown workload")
	// ErrWorkloadBuild reports a workload that failed to build —
	// typically a calibration dry run that could not complete (e.g. a
	// runaway custom spec tripping the retirement guard). The old code
	// panicked here; the registry reports it as a classified error.
	ErrWorkloadBuild = workloads.ErrBuild
	// ErrUnknownExperiment reports an experiment name RunExperiment
	// does not recognise.
	ErrUnknownExperiment = errors.New("hbbp: unknown experiment")
	// ErrProfileMagic reports a LoadProfile stream that is not a
	// stored profile at all.
	ErrProfileMagic = profstore.ErrBadMagic
	// ErrProfileTruncated reports a stored profile cut mid-record.
	ErrProfileTruncated = profstore.ErrTruncatedRecord
	// ErrProfileVersion reports a stored profile written in a format
	// version this library cannot read.
	ErrProfileVersion = profstore.ErrUnsupportedVersion
)
