package hbbp

import (
	"errors"

	"hbbp/internal/cpu"
	"hbbp/internal/fleetserver"
	"hbbp/internal/fleetwire"
	"hbbp/internal/perffile"
	"hbbp/internal/profstore"
	"hbbp/internal/tsstore"
	"hbbp/internal/workloads"
)

// Typed sentinel errors. Errors returned by the façade wrap these, so
// callers classify failures with errors.Is without depending on
// message text or internal packages.
var (
	// ErrBadMagic reports a replay stream that is not a serialized
	// collection (perffile) at all.
	ErrBadMagic = perffile.ErrBadMagic
	// ErrTruncatedRecord reports a replay stream cut mid-record.
	ErrTruncatedRecord = perffile.ErrTruncatedRecord
	// ErrUnsupportedVersion reports a replay stream written in a format
	// version this library cannot read.
	ErrUnsupportedVersion = perffile.ErrUnsupportedVersion
	// ErrRetireLimit reports a run aborted by the retirement guard
	// (Workload misconfiguration, runaway loops).
	ErrRetireLimit = cpu.ErrRetireLimit
	// ErrUnknownWorkload reports a workload name LookupWorkload does
	// not recognise.
	ErrUnknownWorkload = errors.New("hbbp: unknown workload")
	// ErrWorkloadBuild reports a workload that failed to build —
	// typically a calibration dry run that could not complete (e.g. a
	// runaway custom spec tripping the retirement guard). The old code
	// panicked here; the registry reports it as a classified error.
	ErrWorkloadBuild = workloads.ErrBuild
	// ErrUnknownExperiment reports an experiment name RunExperiment
	// does not recognise.
	ErrUnknownExperiment = errors.New("hbbp: unknown experiment")
	// ErrProfileMagic reports a LoadProfile stream that is not a
	// stored profile at all.
	ErrProfileMagic = profstore.ErrBadMagic
	// ErrProfileTruncated reports a stored profile cut mid-record.
	ErrProfileTruncated = profstore.ErrTruncatedRecord
	// ErrProfileVersion reports a stored profile written in a format
	// version this library cannot read.
	ErrProfileVersion = profstore.ErrUnsupportedVersion
	// ErrFrameMagic reports a fleet-wire peer that is not speaking
	// this protocol at all.
	ErrFrameMagic = fleetwire.ErrFrameMagic
	// ErrFrameTruncated reports a fleet-wire stream cut mid-preamble
	// or mid-frame.
	ErrFrameTruncated = fleetwire.ErrFrameTruncated
	// ErrFrameCorrupt reports a fleet-wire frame whose CRC did not
	// match — line noise caught before it could reach merged state.
	ErrFrameCorrupt = fleetwire.ErrFrameCorrupt
	// ErrFrameTooLarge reports a fleet-wire frame whose declared size
	// exceeds the connection's limit.
	ErrFrameTooLarge = fleetwire.ErrFrameTooLarge
	// ErrWireVersion reports a fleet-wire peer speaking a protocol
	// version this library cannot.
	ErrWireVersion = fleetwire.ErrUnsupportedVersion
	// ErrWireProtocol reports a structurally broken fleet-wire
	// message inside an intact frame.
	ErrWireProtocol = fleetwire.ErrProtocol
	// ErrOverloaded reports a profile the ingest server shed under
	// load after the client's retry budget ran out. The shed is
	// counted in the server's per-tenant drop ledger.
	ErrOverloaded = fleetserver.ErrOverloaded
	// ErrProfileRejected reports a profile the ingest server refused
	// as unloadable; not retryable.
	ErrProfileRejected = fleetserver.ErrRejected
	// ErrFleetClientClosed reports a Send on a closed fleet client.
	ErrFleetClientClosed = fleetserver.ErrClientClosed
	// ErrInjectedFault is the cause carried by every fault the chaos
	// harness ([NewFlakyConn], [NewFlakyListener]) injects, so tests
	// can tell deliberate faults from real transport failures.
	ErrInjectedFault = fleetwire.ErrInjected
	// ErrSeriesMagic reports an OpenSeries index file that is not a
	// series index at all.
	ErrSeriesMagic = tsstore.ErrBadMagic
	// ErrSeriesTruncated reports a series index cut mid-record.
	ErrSeriesTruncated = tsstore.ErrTruncatedRecord
	// ErrSeriesVersion reports a series index written in a format
	// version this library cannot read.
	ErrSeriesVersion = tsstore.ErrUnsupportedVersion
	// ErrSeriesWindowMismatch reports a series window file whose size
	// or checksum disagrees with its index entry — a torn write, a
	// stale file or a swap; re-save the series to repair.
	ErrSeriesWindowMismatch = tsstore.ErrWindowMismatch
	// ErrNotEnoughWindows reports a trend scan over a series with fewer
	// retained windows than the requested k.
	ErrNotEnoughWindows = tsstore.ErrNotEnoughWindows
)
