package hbbp_test

// The documented happy path, verified by go test: these examples
// mirror examples/quickstart and the README against the public façade
// only. Everything is deterministic — fixed seeds, a pure-Go
// simulation — so the outputs are pinned exactly.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"hbbp"
)

// ExampleSession_Profile is the library's happy path: configure a
// session, profile a workload, render the instruction mix and score it
// against ground-truth instrumentation attached to the same run.
func ExampleSession_Profile() {
	// The Geant4-like Test40 simulation, scaled down for a quick run.
	w, err := hbbp.Test40()
	if err != nil {
		log.Fatal(err)
	}
	w = w.Scaled(0.2)

	s, err := hbbp.New(hbbp.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// The Instrumenter rides along only to provide ground truth for
	// the accuracy report; HBBP itself never needs it.
	ref := hbbp.NewInstrumenter(w.Prog)
	prof, err := s.Profile(context.Background(), w, ref)
	if err != nil {
		log.Fatal(err)
	}

	tab := hbbp.Pivot(prof, hbbp.ViewOptions{LiveText: true})
	fmt.Print(hbbp.Render([]string{"MNEMONIC"}, hbbp.TopMnemonics(tab, 3)))

	opts := hbbp.ViewOptions{Scope: hbbp.ScopeUser, LiveText: true}
	errHBBP := hbbp.AvgWeightedError(hbbp.ReferenceMix(ref), hbbp.InstructionMix(prof, opts))
	fmt.Printf("avg weighted error vs instrumentation: %.1f%%\n", 100*errHBBP)

	// Output:
	// MNEMONIC   VALUE
	// MOV       117.8k
	// ADD        75.0k
	// SHL        47.6k
	// avg weighted error vs instrumentation: 1.6%
}

// ExampleSession_Replay shows the collect-then-replay round trip: the
// serialized stream a profiling run writes re-analyzes to the same
// per-block counts, because replay feeds the same sinks the live run
// dispatched to.
func ExampleSession_Replay() {
	w, err := hbbp.KernelPrime()
	if err != nil {
		log.Fatal(err)
	}
	w = w.Scaled(0.5)

	var raw bytes.Buffer
	s, err := hbbp.New(hbbp.WithSeed(11), hbbp.WithRawOutput(&raw))
	if err != nil {
		log.Fatal(err)
	}
	live, err := s.Profile(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := s.Replay(context.Background(), w, &raw)
	if err != nil {
		log.Fatal(err)
	}

	identical := len(live.BBECs) == len(replayed.BBECs)
	for id := range live.BBECs {
		identical = identical && live.BBECs[id] == replayed.BBECs[id]
	}
	fmt.Printf("replayed %d EBS samples, %d LBR stacks\n",
		len(replayed.Collection.EBSIPs), len(replayed.Collection.Stacks))
	fmt.Printf("replayed BBECs identical to live collection: %v\n", identical)

	// Output:
	// replayed 1481 EBS samples, 1521 LBR stacks
	// replayed BBECs identical to live collection: true
}

// ExampleLookupWorkload shows name-based workload selection and the
// typed error unknown names return.
func ExampleLookupWorkload() {
	w, err := hbbp.LookupWorkload("test40")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", w.Name, w.Description)

	_, err = hbbp.LookupWorkload("spectre")
	fmt.Printf("unknown name is typed: %v\n", errors.Is(err, hbbp.ErrUnknownWorkload))

	// Output:
	// test40: Geant4-like particle simulation: object-oriented, short methods (Table 5, Figures 3-4)
	// unknown name is typed: true
}
